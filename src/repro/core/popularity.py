"""Query popularity model: geographic query classes, per-day Zipf ranking,
and hot-set drift.

Section 4.6 of the paper finds that (1) queries split into seven disjoint
geographic classes (one per region, one per region pair, one shared by all
three -- Table 3); (2) within a class, per-day popularity is Zipf-like
(Figure 11), with the NA/EU intersection class needing a body/tail fit;
and (3) the identity of the popular queries drifts substantially from day
to day (Figure 10), so popularity must be ranked per day, not over the
whole trace.

:class:`QueryUniverse` implements all three: it maintains per-class query
pools whose daily scores follow an autoregressive process (producing
hot-set drift with tunable persistence), exposes the per-day ranked query
sets, and samples queries for a (region, day) pair via the class-choice
probabilities and the class's Zipf distribution.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .distributions import Zipf
from .kernels import CategoricalTable
from .parameters import (
    INTERSECTION_ZIPF,
    OWN_CLASS_PROBABILITY,
    QUERY_CLASS_SIZES,
    ZIPF_ALPHA,
    QueryClassSizes,
)
from .regions import Region

__all__ = [
    "CLASS_CODE",
    "CLASS_ORDER",
    "QueryClassId",
    "region_class_probabilities",
    "BodyTailZipf",
    "zipf_for_class",
    "QueryUniverse",
]


class QueryClassId(enum.Enum):
    """The seven disjoint geographic query classes of Section 4.6."""

    NA_ONLY = "na_only"
    EU_ONLY = "eu_only"
    AS_ONLY = "as_only"
    NA_EU = "na_eu"
    NA_AS = "na_as"
    EU_AS = "eu_as"
    ALL = "all"


#: Stable class <-> small-integer code table for the columnar synthesis
#: fast path: query identities travel through the vectorized pipeline as
#: ``(class code, rank)`` integer pairs and are resolved to strings once,
#: at the very end, via :meth:`QueryUniverse.ranking_array`.
CLASS_ORDER: Tuple[QueryClassId, ...] = tuple(QueryClassId)
CLASS_CODE: Dict[QueryClassId, int] = {c: i for i, c in enumerate(CLASS_ORDER)}

_REGION_OWN_CLASS: Dict[Region, QueryClassId] = {
    Region.NORTH_AMERICA: QueryClassId.NA_ONLY,
    Region.EUROPE: QueryClassId.EU_ONLY,
    Region.ASIA: QueryClassId.AS_ONLY,
}

_REGION_SHARED_CLASSES: Dict[Region, Tuple[QueryClassId, ...]] = {
    Region.NORTH_AMERICA: (QueryClassId.NA_EU, QueryClassId.NA_AS, QueryClassId.ALL),
    Region.EUROPE: (QueryClassId.NA_EU, QueryClassId.EU_AS, QueryClassId.ALL),
    Region.ASIA: (QueryClassId.NA_AS, QueryClassId.EU_AS, QueryClassId.ALL),
}


def _class_size(sizes: QueryClassSizes, cls: QueryClassId) -> int:
    return {
        QueryClassId.NA_ONLY: sizes.na_only,
        QueryClassId.EU_ONLY: sizes.eu_only,
        QueryClassId.AS_ONLY: sizes.as_only,
        QueryClassId.NA_EU: sizes.na_eu,
        QueryClassId.NA_AS: sizes.na_as,
        QueryClassId.EU_AS: sizes.eu_as,
        QueryClassId.ALL: sizes.all_three,
    }[cls]


def region_class_probabilities(region: Region) -> Dict[QueryClassId, float]:
    """Probability that a query from ``region`` falls in each class.

    The own-region class carries probability 0.97 (Section 4.6's worked
    example); the remaining 0.03 is split across the region's shared
    classes proportionally to their Table 3 single-day sizes.
    """
    if region is Region.OTHER:
        region = Region.NORTH_AMERICA
    sizes = QUERY_CLASS_SIZES[1]
    shared = _REGION_SHARED_CLASSES[region]
    weights = np.array([_class_size(sizes, c) for c in shared], dtype=float)
    if weights.sum() <= 0:
        raise ValueError(f"no shared query classes for {region}")
    probs = {_REGION_OWN_CLASS[region]: OWN_CLASS_PROBABILITY}
    rest = 1.0 - OWN_CLASS_PROBABILITY
    for cls, w in zip(shared, weights / weights.sum()):
        probs[cls] = rest * float(w)
    return probs


class BodyTailZipf:
    """Discrete rank distribution with two Zipf regimes (Figure 11c).

    Ranks ``1..split`` follow exponent ``alpha_body``; ranks beyond follow
    the much steeper ``alpha_tail``, continuous at the split point.
    """

    def __init__(self, alpha_body: float, alpha_tail: float, split: int, n: int):
        if not 1 <= split < n:
            raise ValueError(f"need 1 <= split < n, got split={split}, n={n}")
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks**-alpha_body
        # Continue the tail from the body's value at the split rank.
        tail_ranks = ranks[split:]
        weights[split:] = weights[split - 1] * (tail_ranks / float(split)) ** -alpha_tail
        self.alpha_body = alpha_body
        self.alpha_tail = alpha_tail
        self.split = split
        self.n = n
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        self._table = None  # lazy kernels.CategoricalTable over _cdf

    def pmf(self, rank: int) -> float:
        if not 1 <= rank <= self.n:
            return 0.0
        return float(self._pmf[rank - 1])

    def sample(self, rng: np.random.Generator, size=None):
        if self._table is None:
            self._table = CategoricalTable(self._cdf)
        ranks = self._table.lookup(rng.random(size)) + 1
        return int(ranks) if size is None else ranks.astype(int)

    def __repr__(self):
        return (
            f"BodyTailZipf(body={self.alpha_body}, tail={self.alpha_tail}, "
            f"split={self.split}, n={self.n})"
        )


def zipf_for_class(cls: QueryClassId, n: int):
    """The Figure 11 popularity distribution for a query class of size ``n``."""
    if n < 1:
        raise ValueError(f"class size must be >= 1, got {n}")
    if cls is QueryClassId.NA_EU and n > INTERSECTION_ZIPF["split_rank"] + 1:
        return BodyTailZipf(
            alpha_body=ZIPF_ALPHA["na_eu_body"],
            alpha_tail=ZIPF_ALPHA["na_eu_tail"],
            split=INTERSECTION_ZIPF["split_rank"],
            n=n,
        )
    alpha = {
        QueryClassId.NA_ONLY: ZIPF_ALPHA["na_only"],
        QueryClassId.EU_ONLY: ZIPF_ALPHA["eu_only"],
        QueryClassId.AS_ONLY: ZIPF_ALPHA["as_only"],
        QueryClassId.NA_EU: ZIPF_ALPHA["na_eu_body"],
        QueryClassId.NA_AS: ZIPF_ALPHA["na_eu_body"],
        QueryClassId.EU_AS: ZIPF_ALPHA["na_eu_body"],
        QueryClassId.ALL: ZIPF_ALPHA["na_eu_body"],
    }[cls]
    return Zipf(alpha=alpha, n=n)


@dataclass(frozen=True)
class SampledQuery:
    """A query drawn from the universe."""

    keywords: str
    rank: int
    query_class: QueryClassId


class QueryUniverse:
    """Per-day query universes with hot-set drift.

    Each class owns a pool ``pool_factor`` times its daily size.  A
    query's daily log-score follows an AR(1) process
    ``g(d) = rho * g(d-1) + sqrt(1 - rho**2) * N(0, 1)`` on top of a mild
    long-term base weight; each day the top ``daily_size`` scorers form
    the day's ranked query set.  The autocorrelation ``persistence``
    (rho) controls hot-set drift: the default reproduces the Figure 10
    observation that for ~80% of days at most 4 of the top 10 queries
    reappear in the next day's top 100.
    """

    def __init__(
        self,
        period_days: int = 1,
        seed: int = 20040315,
        pool_factor: float = 5.0,
        persistence: float = 0.55,
        scale: float = 1.0,
    ):
        if period_days not in QUERY_CLASS_SIZES:
            raise ValueError(
                f"period_days must be one of {sorted(QUERY_CLASS_SIZES)}, got {period_days}"
            )
        if not 0.0 <= persistence < 1.0:
            raise ValueError(f"persistence must be in [0, 1), got {persistence}")
        self.period_days = period_days
        self.persistence = persistence
        self._rng = np.random.default_rng(seed)
        self._sizes = QUERY_CLASS_SIZES[period_days]
        self._daily_size: Dict[QueryClassId, int] = {}
        self._pool: Dict[QueryClassId, List[str]] = {}
        self._pool_arrays: Dict[QueryClassId, np.ndarray] = {}
        self._base_weight: Dict[QueryClassId, np.ndarray] = {}
        self._scores: Dict[QueryClassId, Dict[int, np.ndarray]] = {}
        self._rankings: Dict[Tuple[QueryClassId, int], List[str]] = {}
        self._ranking_arrays: Dict[Tuple[QueryClassId, int], np.ndarray] = {}
        self._lookup_index: Dict[int, Dict[str, Tuple[QueryClassId, int]]] = {}
        self._popularity_cache: Dict[QueryClassId, object] = {}
        self._region_cum_cache: Dict[Region, tuple] = {}
        self._region_table_cache: Dict[Region, CategoricalTable] = {}
        self._noise_sigma = 2.0
        for cls in QueryClassId:
            size = max(1, int(round(_class_size(self._sizes, cls) * scale)))
            pool_size = max(size + 2, int(round(size * pool_factor)))
            self._daily_size[cls] = size
            # Vectorized f"{cls.value}-q{idx:05d}": zfill pads to >= 5
            # digits and leaves longer indices alone, exactly like %05d.
            pool_arr = np.char.add(
                f"{cls.value}-q",
                np.char.zfill(np.arange(pool_size, dtype=np.int64).astype("U11"), 5),
            )
            self._pool[cls] = pool_arr.tolist()
            self._pool_arrays[cls] = pool_arr
            ranks = np.arange(1, pool_size + 1, dtype=float)
            # Mild long-term skew: persistent favourites exist, but the
            # daily lognormal noise (sigma = 2) dominates rank identity.
            self._base_weight[cls] = -0.3 * np.log(ranks)
            self._scores[cls] = {}

    def daily_size(self, cls: QueryClassId) -> int:
        """Number of distinct queries the class contributes per period."""
        return self._daily_size[cls]

    def lookup(self, day: int, keywords: str):
        """Resolve a query string to its (class, rank) on ``day``.

        Returns None for strings outside that day's universe (e.g. SHA1
        source-search urns).  Used by the hit model: a responder count
        depends on how widely replicated the queried file is, which
        tracks the query's popularity rank.
        """
        index = self._lookup_index.get(day)
        if index is None:
            index = {}
            for cls in QueryClassId:
                for rank, query in enumerate(self.daily_ranking(day, cls), start=1):
                    index[query] = (cls, rank)
            self._lookup_index[day] = index
        return index.get(keywords)

    def daily_ranking(self, day: int, cls: QueryClassId) -> List[str]:
        """The day's query strings for ``cls``, most popular first."""
        if day < 0:
            raise ValueError(f"day must be >= 0, got {day}")
        key = (cls, day)
        if key not in self._rankings:
            scores = self._scores_for(cls, day)
            order = np.argsort(-scores)[: self._daily_size[cls]]
            self._rankings[key] = self._pool_arrays[cls][order].tolist()
        return self._rankings[key]

    def popularity_distribution(self, cls: QueryClassId):
        """Figure 11 rank distribution for this class's daily set."""
        dist = self._popularity_cache.get(cls)
        if dist is None:
            dist = zipf_for_class(cls, self._daily_size[cls])
            self._popularity_cache[cls] = dist
        return dist

    def prebuild(self, max_day: int) -> "QueryUniverse":
        """Materialize rankings for days ``0..max_day`` in canonical order.

        The AR(1) score chains consume ``self._rng`` lazily, so two
        universes with the same seed agree only if they build days and
        classes in the same order.  Parallel trace shards call this
        before sampling: every shard then holds byte-identical daily
        rankings, and sessions merged from different shards draw from
        one consistent content universe.  Returns ``self`` for chaining.
        """
        for day in range(max_day + 1):
            for cls in QueryClassId:
                self.daily_ranking(day, cls)
        return self

    def _region_class_cum(self, region: Region):
        """(classes, cumulative weights) for ``region``, cached."""
        cached = self._region_cum_cache.get(region)
        if cached is None:
            probs = region_class_probabilities(region)
            classes = tuple(probs)
            weights = np.array([probs[c] for c in classes], dtype=float)
            cached = (classes, np.cumsum(weights / weights.sum()))
            self._region_cum_cache[region] = cached
        return cached

    def _region_class_table(self, region: Region) -> CategoricalTable:
        """O(1) class-choice draw table over :meth:`_region_class_cum`."""
        table = self._region_table_cache.get(region)
        if table is None:
            table = CategoricalTable(self._region_class_cum(region)[1])
            self._region_table_cache[region] = table
        return table

    def sample(self, rng: np.random.Generator, day: int, region: Region) -> SampledQuery:
        """Draw one query for a peer of ``region`` active on ``day``.

        Implements steps (c)(ii)-(iii) of the Figure 12 algorithm: choose
        the query class, then the rank within the class's daily set.
        """
        classes, _ = self._region_class_cum(region)
        cls = classes[int(self._region_class_table(region).lookup(rng.random()))]
        dist = self.popularity_distribution(cls)
        rank = int(dist.sample(rng))
        ranking = self.daily_ranking(day, cls)
        rank = min(rank, len(ranking))
        return SampledQuery(keywords=ranking[rank - 1], rank=rank, query_class=cls)

    def sample_batch(
        self, rng: np.random.Generator, day: int, region: Region, count: int
    ) -> List[SampledQuery]:
        """``count`` draws from :meth:`sample`'s model with batched RNG.

        Classes are chosen with one vectorized inverse-CDF pass, then
        ranks are drawn per class group through the (vectorized) Zipf
        quantile function -- one ``ppf`` call per distinct class instead
        of one scalar ``rng.choice`` plus one scalar ``ppf`` per query.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        classes, _ = self._region_class_cum(region)
        picks = self._region_class_table(region).sample(rng, count)
        out: List[Optional[SampledQuery]] = [None] * count
        for cls_index in np.unique(picks):
            cls = classes[int(cls_index)]
            positions = np.nonzero(picks == cls_index)[0]
            ranks = self.popularity_distribution(cls).sample(rng, size=positions.size)
            ranking = self.daily_ranking(day, cls)
            for pos, rank in zip(positions, np.asarray(ranks, dtype=int)):
                rank = min(int(rank), len(ranking))
                out[pos] = SampledQuery(
                    keywords=ranking[rank - 1], rank=rank, query_class=cls
                )
        return out

    def ranking_array(self, day: int, cls: QueryClassId) -> np.ndarray:
        """:meth:`daily_ranking` as a cached NumPy unicode array.

        The columnar fast path gathers query strings for whole
        ``(day, class)`` groups with one fancy-indexing operation; the
        array form is cached separately so the list form (and everything
        keyed on it) is untouched.
        """
        key = (cls, day)
        arr = self._ranking_arrays.get(key)
        if arr is None:
            arr = np.array(self.daily_ranking(day, cls), dtype=np.str_)
            self._ranking_arrays[key] = arr
        return arr

    def sample_batch_codes(
        self, rng: np.random.Generator, region: Region, count: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``count`` draws from :meth:`sample`'s model, as integer codes.

        Returns ``(class codes, ranks)`` -- see :data:`CLASS_CODE`; ranks
        are 1-based and already clamped to the class's daily size.  This
        is the string-free form of :meth:`sample_batch`: the day never
        enters the draw (class choice and rank distribution are
        day-independent), so callers resolve codes to strings later with
        :meth:`ranking_array` for whatever day each query lands on.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        classes, _ = self._region_class_cum(region)
        picks = self._region_class_table(region).sample(rng, count)
        cls_codes = np.empty(count, dtype=np.int8)
        ranks = np.empty(count, dtype=np.int64)
        for cls_index in np.unique(picks):
            cls = classes[int(cls_index)]
            positions = np.nonzero(picks == cls_index)[0]
            drawn = self.popularity_distribution(cls).sample(rng, size=positions.size)
            ranks[positions] = np.minimum(
                np.asarray(drawn, dtype=np.int64), self._daily_size[cls]
            )
            cls_codes[positions] = CLASS_CODE[cls]
        return cls_codes, ranks

    def batch_sampler(self) -> "ClassRankSampler":
        """A picklable snapshot of this universe's code-sampling tables.

        The columnar workload generator ships the snapshot to shard
        worker processes instead of the universe itself: class choice
        and rank draws need only the region mix tables and the Figure 11
        rank CDFs, not the pools, rankings, or AR(1) score state.
        """
        return ClassRankSampler.from_universe(self)

    def _scores_for(self, cls: QueryClassId, day: int) -> np.ndarray:
        """AR(1) latent interest ``g`` per query; score = base + sigma * g.

        Scores for day ``d`` are the log-popularity of every pool entry.
        The chain is built sequentially from day 0 so results are
        deterministic for a given seed regardless of query order.
        """
        cache = self._scores[cls]
        if day in cache:
            return self._base_weight[cls] + self._noise_sigma * cache[day]
        start = day
        while start > 0 and (start - 1) not in cache:
            start -= 1
        rho = self.persistence
        innovation_scale = math.sqrt(1.0 - rho * rho)
        n = len(self._pool[cls])
        for d in range(start, day + 1):
            fresh = self._rng.standard_normal(n)
            if d == 0 or (d - 1) not in cache:
                cache[d] = fresh
            else:
                cache[d] = rho * cache[d - 1] + innovation_scale * fresh
        return self._base_weight[cls] + self._noise_sigma * cache[day]


class ClassRankSampler:
    """Vectorized (class, rank) sampling over *mixed-region* query batches.

    A frozen, picklable snapshot of a :class:`QueryUniverse`'s sampling
    tables: per major region the class-choice cumulative weights, and per
    class the Figure 11 rank CDF plus the daily-size clamp.  ``sample``
    performs steps (c)(ii)-(iii) of the Figure 12 algorithm for a whole
    flat query batch whose rows may belong to different regions -- the
    form the columnar generator's per-shard workers need, with no RNG or
    string state of their own.

    Region codes follow :data:`~repro.core.regions.MAJOR_REGIONS` order;
    class codes follow :data:`CLASS_ORDER`.  RNG consumption matches
    :meth:`QueryUniverse.sample_batch_codes` per region group: one
    uniform batch for the class picks, then one per distinct class for
    the ranks, with groups visited in fixed (region, class-code) order so
    draws are deterministic for a given stream.
    """

    def __init__(
        self,
        region_classes: Sequence[np.ndarray],
        region_cum: Sequence[np.ndarray],
        class_cdfs: Sequence[np.ndarray],
        class_sizes: np.ndarray,
    ):
        self._region_classes = [np.asarray(a, dtype=np.int8) for a in region_classes]
        self._region_cum = [np.asarray(a, dtype=np.float64) for a in region_cum]
        self._class_cdfs = [np.asarray(a, dtype=np.float64) for a in class_cdfs]
        self._class_sizes = np.asarray(class_sizes, dtype=np.int64)
        # Draw tables are built lazily per process and dropped from the
        # pickled snapshot (rebuilding is cheaper than shipping them).
        self._region_tables: Optional[List[CategoricalTable]] = None
        self._class_tables: Optional[List[CategoricalTable]] = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_region_tables"] = None
        state["_class_tables"] = None
        return state

    @classmethod
    def from_universe(cls, universe: QueryUniverse) -> "ClassRankSampler":
        from .regions import MAJOR_REGIONS

        region_classes, region_cum = [], []
        for region in MAJOR_REGIONS:
            classes, cum = universe._region_class_cum(region)
            region_classes.append(
                np.array([CLASS_CODE[c] for c in classes], dtype=np.int8)
            )
            region_cum.append(np.asarray(cum, dtype=np.float64))
        class_cdfs = [
            np.asarray(universe.popularity_distribution(c)._cdf, dtype=np.float64)
            for c in CLASS_ORDER
        ]
        sizes = np.array([universe.daily_size(c) for c in CLASS_ORDER], dtype=np.int64)
        return cls(region_classes, region_cum, class_cdfs, sizes)

    def sample(
        self, rng: np.random.Generator, region_codes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``(class codes, 1-based ranks)`` for each batch row."""
        region_codes = np.asarray(region_codes)
        if self._region_tables is None:
            self._region_tables = [CategoricalTable(c) for c in self._region_cum]
            self._class_tables = [CategoricalTable(c) for c in self._class_cdfs]
        n = region_codes.size
        cls_codes = np.empty(n, dtype=np.int8)
        ranks = np.empty(n, dtype=np.int64)
        for rc in range(len(self._region_cum)):
            positions = np.nonzero(region_codes == rc)[0]
            if positions.size == 0:
                continue
            picks = self._region_tables[rc].sample(rng, positions.size)
            picks = np.minimum(picks, self._region_classes[rc].size - 1)
            codes = self._region_classes[rc][picks]
            cls_codes[positions] = codes
            for code in np.unique(codes):
                sub = positions[codes == code]
                drawn = self._class_tables[int(code)].sample(rng, sub.size) + 1
                ranks[sub] = np.minimum(drawn, self._class_sizes[int(code)])
        return cls_codes, ranks


def top_n_overlap(ranking_a: Sequence[str], ranking_b: Sequence[str], rank_range: Tuple[int, int], top_n: int) -> int:
    """How many of ``ranking_a``'s ranks ``[lo, hi]`` appear in ``ranking_b``'s top N.

    This is the Figure 10 drift statistic: e.g. ``rank_range=(1, 10),
    top_n=100`` asks how many of today's top 10 are in tomorrow's top 100.
    Ranks are 1-based and inclusive.
    """
    lo, hi = rank_range
    if lo < 1 or hi < lo:
        raise ValueError(f"invalid rank range {rank_range}")
    subset = set(ranking_a[lo - 1 : hi])
    return len(subset & set(ranking_b[:top_n]))


__all__.extend(["ClassRankSampler", "SampledQuery", "top_n_overlap"])
