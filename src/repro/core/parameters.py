"""The paper's published model parameters and derived regional variants.

Everything quantitative the paper reports lives here:

* Tables A.1-A.5 verbatim (North American peers),
* Table 3 (query class sizes for 1/2/4-day periods),
* the Zipf parameters of Figure 11,
* the geographic mix vs. time of day of Figure 1,
* the passive-peer fractions of Figure 4,
* Table 1 / Table 2 reference counts for validation.

Tables A.1 and A.3-A.5 are published for North America only.  Sections
4.4-4.5 give qualitative anchors for Europe and Asia (quoted inline
below); the derived parameter sets shift the North American parameters to
match those anchors.  Every derived value carries a comment citing the
anchoring sentence so the provenance of each number is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from .distributions import Distribution, Lognormal, Pareto, Spliced, Truncated, Weibull
from .regions import Region

__all__ = [
    "MIN_SESSION_SECONDS",
    "passive_duration_model",
    "queries_per_session_model",
    "first_query_model",
    "interarrival_model",
    "last_query_model",
    "geographic_mix",
    "geographic_mix_arrays",
    "passive_fraction",
    "QUERY_CLASS_SIZES",
    "QueryClassSizes",
    "ZIPF_ALPHA",
    "INTERSECTION_ZIPF",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "first_query_class",
    "last_query_class",
    "interarrival_query_class",
]

#: Filter rule 3 cutoff: sessions shorter than this are system artifacts.
MIN_SESSION_SECONDS = 64.0

#: Body/tail boundary for passive session duration (Table A.1: "1-2 minutes").
PASSIVE_BODY_BOUNDARY = 120.0

#: Body/tail boundary for interarrival time (Table A.4: beta = 103 s).
INTERARRIVAL_BOUNDARY = 103.0


# ---------------------------------------------------------------------------
# Table A.1 -- connected session duration for passive peers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _SplicedSpec:
    body: Distribution
    tail: Distribution
    boundary: float
    body_weight: float
    body_low: float = 0.0

    def build(self) -> Spliced:
        return Spliced(self.body, self.tail, self.boundary, self.body_weight, self.body_low)


_PASSIVE_DURATION: Dict[Tuple[Region, bool], _SplicedSpec] = {
    # Table A.1, verbatim.  Body covers the filtered range (64 s, 2 min];
    # weights 75% (peak) / 45%->55% split published as 75/25 and 55/45.
    (Region.NORTH_AMERICA, True): _SplicedSpec(
        body=Lognormal(mu=2.108, sigma=2.502),
        tail=Lognormal(mu=6.397, sigma=2.749),
        boundary=PASSIVE_BODY_BOUNDARY,
        body_low=MIN_SESSION_SECONDS,
        body_weight=0.75,
    ),
    (Region.NORTH_AMERICA, False): _SplicedSpec(
        body=Lognormal(mu=2.201, sigma=2.383),
        tail=Lognormal(mu=6.817, sigma=2.848),
        boundary=PASSIVE_BODY_BOUNDARY,
        body_low=MIN_SESSION_SECONDS,
        body_weight=0.55,
    ),
    # Europe (derived): "in Europe only 55% [of passive sessions] are
    # shorter than 2 minutes"; "longer sessions make up ... 10% in Europe"
    # (Section 4.4).  Body weight anchored at 0.55; the tail lognormal is
    # shifted up so that P[>200 min | >2 min] is about 10%/45% = 0.22.
    (Region.EUROPE, True): _SplicedSpec(
        body=Lognormal(mu=2.20, sigma=2.45),
        tail=Lognormal(mu=6.90, sigma=2.80),
        boundary=PASSIVE_BODY_BOUNDARY,
        body_low=MIN_SESSION_SECONDS,
        body_weight=0.55,
    ),
    # "sessions started in the early morning are notably longer" (Fig 5c);
    # same peak->non-peak weight delta as the published NA pair (0.20).
    (Region.EUROPE, False): _SplicedSpec(
        body=Lognormal(mu=2.25, sigma=2.40),
        tail=Lognormal(mu=7.20, sigma=2.85),
        boundary=PASSIVE_BODY_BOUNDARY,
        body_low=MIN_SESSION_SECONDS,
        body_weight=0.40,
    ),
    # Asia (derived): "in Asia 85% of the sessions are shorter than 2
    # minutes ... longer sessions make up 3% in Asia" (Section 4.4).
    (Region.ASIA, True): _SplicedSpec(
        body=Lognormal(mu=2.05, sigma=2.40),
        tail=Lognormal(mu=5.95, sigma=2.60),
        boundary=PASSIVE_BODY_BOUNDARY,
        body_low=MIN_SESSION_SECONDS,
        body_weight=0.85,
    ),
    (Region.ASIA, False): _SplicedSpec(
        body=Lognormal(mu=2.10, sigma=2.35),
        tail=Lognormal(mu=6.30, sigma=2.70),
        boundary=PASSIVE_BODY_BOUNDARY,
        body_low=MIN_SESSION_SECONDS,
        body_weight=0.72,
    ),
}


def passive_duration_model(region: Region, peak: bool) -> Distribution:
    """Passive connected-session duration (seconds), Table A.1.

    The returned distribution is truncated below at the 64-second filter
    cutoff, because the characterization only covers surviving sessions.
    """
    spec = _PASSIVE_DURATION[_major(region), peak]
    return spec.build()


# ---------------------------------------------------------------------------
# Table A.2 -- active session length in number of queries
# ---------------------------------------------------------------------------

_QUERIES_PER_SESSION: Dict[Region, Lognormal] = {
    # Verbatim from Table A.2 (all three regions are published).
    Region.NORTH_AMERICA: Lognormal(mu=-0.0673, sigma=1.360),
    Region.EUROPE: Lognormal(mu=0.520, sigma=1.306),
    Region.ASIA: Lognormal(mu=-1.029, sigma=1.618),
}


def queries_per_session_model(region: Region) -> Lognormal:
    """Continuous model of queries per active session (Table A.2).

    Samples are continuous; take ``ceil`` to obtain a query count >= 1,
    preserving the published CCDF anchors (e.g. 70% of European sessions
    issue < 5 queries).
    """
    return _QUERIES_PER_SESSION[_major(region)]


# ---------------------------------------------------------------------------
# Table A.3 -- time until first query
# ---------------------------------------------------------------------------

def first_query_class(n_queries: int) -> str:
    """Session class used to condition time-until-first-query (Table A.3)."""
    if n_queries < 3:
        return "<3"
    if n_queries == 3:
        return "=3"
    return ">3"


# Body weights are not printed in Table A.3; Figure 7(a) shows ~40% of
# sessions issue the first query within 30 seconds and ~50% within the
# 45-second body boundary, so the body carries half the mass in peak
# periods.  Non-peak sessions start more slowly (Fig. 7c), body to 120 s.
_FIRST_QUERY_NA: Dict[Tuple[bool, str], _SplicedSpec] = {
    (True, "<3"): _SplicedSpec(Weibull(1.477, 0.005252), Lognormal(5.091, 2.905), 45.0, 0.50),
    (True, "=3"): _SplicedSpec(Weibull(1.261, 0.01081), Lognormal(6.303, 2.045), 45.0, 0.50),
    (True, ">3"): _SplicedSpec(Weibull(0.9821, 0.02662), Lognormal(6.301, 2.359), 45.0, 0.50),
    (False, "<3"): _SplicedSpec(Weibull(1.159, 0.01779), Lognormal(5.144, 3.384), 120.0, 0.55),
    (False, "=3"): _SplicedSpec(Weibull(1.207, 0.01446), Lognormal(6.400, 2.324), 120.0, 0.55),
    (False, ">3"): _SplicedSpec(Weibull(0.9351, 0.03380), Lognormal(7.186, 2.463), 120.0, 0.55),
}


def first_query_model(region: Region, peak: bool, n_queries: int) -> Distribution:
    """Time (seconds) from connect to the first query, Table A.3.

    North America is verbatim from the paper.  Europe tracks North
    America closely in the body ("the curves look very similar for North
    American and European peers", Section 4.5) but stretches the tail
    ("the same fraction of peers issues the first query within 30 and
    1,000 seconds for Europe").  Asia is much tighter: "Another 50% of
    the Asian peers issue the first query within 30 and 90 seconds".
    """
    region = _major(region)
    cls = first_query_class(n_queries)
    if region is Region.NORTH_AMERICA:
        return _FIRST_QUERY_NA[peak, cls].build()
    na = _FIRST_QUERY_NA[peak, cls]
    if region is Region.EUROPE:
        tail = na.tail
        assert isinstance(tail, Lognormal)
        # Stretch the tail median by ~e^0.3 to push the late-first-query
        # mass toward 1,000 s (Fig. 7a anchor).
        return _SplicedSpec(na.body, Lognormal(tail.mu + 0.30, tail.sigma), na.boundary, na.body_weight).build()
    # Asia: 90% of first queries within 90 s (Fig. 7a) -> wide body to
    # 90 s holding 0.9 of the mass, short lognormal tail.
    return _SplicedSpec(
        body=Weibull(alpha=1.30, lam=0.012),
        tail=Lognormal(mu=5.20, sigma=1.60),
        boundary=90.0,
        body_weight=0.90,
    ).build()


# ---------------------------------------------------------------------------
# Table A.4 -- query interarrival time
# ---------------------------------------------------------------------------

def interarrival_query_class(n_queries: int) -> str:
    """Session class for the European interarrival conditioning (Fig. 8b)."""
    if n_queries <= 2:
        return "=2"
    if n_queries <= 7:
        return "3-7"
    return ">7"


# Table A.4 verbatim.  Body weights anchored on Fig. 8(a): "the fraction
# of interarrival times below 100 seconds ... is 70% for North America";
# non-peak queries have shorter interarrivals (Fig. 8c), so the non-peak
# body holds more mass.
_INTERARRIVAL_NA: Dict[bool, _SplicedSpec] = {
    True: _SplicedSpec(Lognormal(3.353, 1.625), Pareto(0.9041, INTERARRIVAL_BOUNDARY), INTERARRIVAL_BOUNDARY, 0.70),
    False: _SplicedSpec(Lognormal(2.933, 1.410), Pareto(1.143, INTERARRIVAL_BOUNDARY), INTERARRIVAL_BOUNDARY, 0.80),
}

# Europe (derived): "the fraction of interarrival times below 100 seconds
# constitutes 90% for Europe"; "94% of the queries issued in Europe
# between 3:00 and 4:00 [non-peak] have an interarrival time below 100
# seconds, while this fraction is only 85% for sessions starting between
# 11:00 and 12:00 [peak]" (Section 4.5).
_INTERARRIVAL_EU: Dict[bool, _SplicedSpec] = {
    True: _SplicedSpec(Lognormal(3.05, 1.50), Pareto(1.00, INTERARRIVAL_BOUNDARY), INTERARRIVAL_BOUNDARY, 0.86),
    False: _SplicedSpec(Lognormal(2.80, 1.40), Pareto(1.20, INTERARRIVAL_BOUNDARY), INTERARRIVAL_BOUNDARY, 0.94),
}

# Asia (derived): "while it is 80% for Asia" (fraction below 100 s).
_INTERARRIVAL_AS: Dict[bool, _SplicedSpec] = {
    True: _SplicedSpec(Lognormal(3.20, 1.55), Pareto(0.95, INTERARRIVAL_BOUNDARY), INTERARRIVAL_BOUNDARY, 0.80),
    False: _SplicedSpec(Lognormal(3.00, 1.45), Pareto(1.15, INTERARRIVAL_BOUNDARY), INTERARRIVAL_BOUNDARY, 0.86),
}

# Fig. 8(b): European sessions with many queries have smaller
# interarrival times; the body median shifts by this factor per class.
# North America shows no such correlation ("no significant correlation
# between these two measures for North American peers").
_EU_NQUERY_MU_SHIFT: Dict[str, float] = {"=2": 0.40, "3-7": 0.0, ">7": -0.40}


def interarrival_model(region: Region, peak: bool, n_queries: int = 5) -> Distribution:
    """Query interarrival time (seconds), Table A.4.

    For European peers the body is additionally conditioned on the number
    of queries in the session (Fig. 8b); for North America and Asia the
    paper finds no such correlation, so ``n_queries`` is ignored.
    """
    region = _major(region)
    if region is Region.NORTH_AMERICA:
        return _INTERARRIVAL_NA[peak].build()
    if region is Region.ASIA:
        return _INTERARRIVAL_AS[peak].build()
    spec = _INTERARRIVAL_EU[peak]
    body = spec.body
    assert isinstance(body, Lognormal)
    shift = _EU_NQUERY_MU_SHIFT[interarrival_query_class(n_queries)]
    return _SplicedSpec(
        Lognormal(body.mu + shift, body.sigma), spec.tail, spec.boundary, spec.body_weight
    ).build()


# ---------------------------------------------------------------------------
# Table A.5 -- time after last query
# ---------------------------------------------------------------------------

def last_query_class(n_queries: int) -> str:
    """Session class used to condition time-after-last-query (Table A.5)."""
    if n_queries <= 1:
        return "1"
    if n_queries <= 7:
        return "2-7"
    return ">7"


_LAST_QUERY_NA: Dict[Tuple[bool, str], Lognormal] = {
    # Verbatim from Table A.5.
    (True, "1"): Lognormal(4.879, 2.361),
    (True, "2-7"): Lognormal(5.686, 2.259),
    (True, ">7"): Lognormal(6.107, 2.145),
    (False, "1"): Lognormal(4.760, 2.162),
    (False, "2-7"): Lognormal(5.672, 2.156),
    (False, ">7"): Lognormal(6.036, 2.286),
}


def last_query_model(region: Region, peak: bool, n_queries: int) -> Lognormal:
    """Time (seconds) from the last query to disconnect, Table A.5.

    Europe tracks North America ("the distributions are very similar for
    North American and European peers", Section 4.5).  Asia closes
    sessions much faster: "the fraction of sessions with a time after
    last query of more than 1000 seconds is 20% for Europe and North
    America, while it is only 10% for Asia" -- a median shift of about
    e^-0.8 reproduces that anchor.
    """
    region = _major(region)
    base = _LAST_QUERY_NA[peak, last_query_class(n_queries)]
    if region is Region.NORTH_AMERICA:
        return base
    if region is Region.EUROPE:
        return Lognormal(base.mu + 0.05, base.sigma)
    return Lognormal(base.mu - 0.80, base.sigma)


# ---------------------------------------------------------------------------
# Figure 1 -- geographic mix vs. time of day (measurement-node hours)
# ---------------------------------------------------------------------------

# Hand-digitized from Figure 1 and the synthetic-mix anchors of Section
# 4.1: "75, 15, 5 at 00:00, or 80, 5, 5 at 3:00, or 60, 20, 15 at 12:00";
# NA ranges 60-80%, Europe 6-20% (max noon-midnight), Asia 4-13% (max in
# the Dortmund morning), other/unknown 5-10%.
_GEO_MIX_NA = [0.75, 0.77, 0.79, 0.80, 0.79, 0.77, 0.74, 0.71, 0.68, 0.66, 0.64, 0.61,
               0.60, 0.61, 0.63, 0.65, 0.68, 0.70, 0.71, 0.72, 0.73, 0.74, 0.74, 0.75]
_GEO_MIX_EU = [0.15, 0.12, 0.09, 0.06, 0.06, 0.07, 0.08, 0.09, 0.10, 0.11, 0.13, 0.17,
               0.20, 0.20, 0.19, 0.19, 0.19, 0.19, 0.20, 0.20, 0.19, 0.18, 0.17, 0.16]
_GEO_MIX_AS = [0.05, 0.04, 0.04, 0.04, 0.04, 0.05, 0.07, 0.09, 0.11, 0.12, 0.13, 0.13,
               0.13, 0.13, 0.12, 0.10, 0.08, 0.06, 0.05, 0.04, 0.04, 0.04, 0.05, 0.05]


def geographic_mix(hour: int) -> Dict[Region, float]:
    """Fraction of connected peers per region at a measurement-node hour.

    The four fractions sum to 1; OTHER absorbs the remainder (the paper's
    "peers from other geographical regions or with unknown origin
    constitute approximately 5-10%").
    """
    h = int(hour) % 24
    na, eu, asia = _GEO_MIX_NA[h], _GEO_MIX_EU[h], _GEO_MIX_AS[h]
    other = max(0.0, 1.0 - na - eu - asia)
    return {
        Region.NORTH_AMERICA: na,
        Region.EUROPE: eu,
        Region.ASIA: asia,
        Region.OTHER: other,
    }


_GEO_MIX_ARRAYS = None


def geographic_mix_arrays():
    """The Figure 1 mix as arrays for vectorized region draws.

    Returns ``(regions, weights, cumulative)`` where ``regions`` is the
    fixed region order, ``weights`` is a ``(24, len(regions))`` matrix of
    normalized per-hour fractions, and ``cumulative`` is its row-wise
    cumulative sum.  A region index for hour ``h`` is drawn as
    ``searchsorted(cumulative[h], u)`` on a uniform ``u`` -- the hot
    synthesis loops use this instead of rebuilding the per-hour weight
    dict and calling ``rng.choice`` per event.
    """
    global _GEO_MIX_ARRAYS
    if _GEO_MIX_ARRAYS is None:
        import numpy as np

        regions = tuple(Region)
        weights = np.empty((24, len(regions)), dtype=float)
        for h in range(24):
            mix = geographic_mix(h)
            weights[h] = [mix[r] for r in regions]
        weights /= weights.sum(axis=1, keepdims=True)
        _GEO_MIX_ARRAYS = (regions, weights, np.cumsum(weights, axis=1))
    return _GEO_MIX_ARRAYS


# ---------------------------------------------------------------------------
# Figure 4 -- fraction of passive peers
# ---------------------------------------------------------------------------

# "about 80% to 85% for North America, 75% to 80% for Europe, and 80% to
# 90% for Asia"; "fluctuates only by about 5% over time of day".
_PASSIVE_FRACTION: Dict[Region, float] = {
    Region.NORTH_AMERICA: 0.825,
    Region.EUROPE: 0.775,
    Region.ASIA: 0.85,
    Region.OTHER: 0.82,
}
_PASSIVE_FRACTION_SWING = 0.025  # +/- half of the ~5% diurnal fluctuation


def passive_fraction(region: Region, hour: int = 12) -> float:
    """Probability that a session starting at ``hour`` is passive (Fig. 4).

    A small sinusoidal diurnal swing reproduces the ~5% fluctuation; the
    swing peaks in the region's local night, when connected-but-idle
    clients dominate.
    """
    import math

    from .regions import REGION_UTC_OFFSET_HOURS

    base = _PASSIVE_FRACTION[region]
    local = (hour + REGION_UTC_OFFSET_HOURS[region]) % 24
    swing = _PASSIVE_FRACTION_SWING * math.cos(2 * math.pi * (local - 3) / 24.0)
    return min(0.98, max(0.02, base + swing))


# ---------------------------------------------------------------------------
# Table 3 -- query class sizes, and Figure 11 -- Zipf parameters
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class QueryClassSizes:
    """Distinct-query counts per geographic class for one period length."""

    na_only: int
    eu_only: int
    as_only: int
    na_eu: int
    na_as: int
    eu_as: int
    all_three: int

    def for_region(self, region: Region) -> Dict[str, int]:
        """Class sizes visible to peers of ``region`` (own + shared sets)."""
        if region is Region.NORTH_AMERICA:
            return {"own": self.na_only, "na_eu": self.na_eu, "na_as": self.na_as, "all": self.all_three}
        if region is Region.EUROPE:
            return {"own": self.eu_only, "na_eu": self.na_eu, "eu_as": self.eu_as, "all": self.all_three}
        if region is Region.ASIA:
            return {"own": self.as_only, "na_as": self.na_as, "eu_as": self.eu_as, "all": self.all_three}
        raise ValueError(f"no query classes for region {region}")


#: Table 3, verbatim.  Note the published counts are totals including the
#: intersections; the *_only fields here subtract shared queries so the
#: seven classes are disjoint, as in the paper's methodology (Section 4.6).
QUERY_CLASS_SIZES: Dict[int, QueryClassSizes] = {
    1: QueryClassSizes(na_only=1990 - 56 - 5 - 2, eu_only=1934 - 56 - 5 - 2, as_only=153 - 5 - 5 - 2,
                       na_eu=56, na_as=5, eu_as=5, all_three=2),
    2: QueryClassSizes(na_only=3588 - 114 - 15 - 4, eu_only=3729 - 114 - 10 - 4, as_only=299 - 15 - 10 - 4,
                       na_eu=114, na_as=15, eu_as=10, all_three=4),
    4: QueryClassSizes(na_only=6106 - 323 - 41 - 17, eu_only=5382 - 323 - 28 - 17, as_only=776 - 41 - 28 - 17,
                       na_eu=323, na_as=41, eu_as=28, all_three=17),
}

#: Figure 11 Zipf-like exponents.  The Asian-only exponent is not
#: published; the text orders alpha(NA) > alpha(EU) and Asian peers issue
#: far fewer distinct queries, so a mid value is used.
ZIPF_ALPHA: Dict[str, float] = {
    "na_only": 0.386,
    "eu_only": 0.223,
    "as_only": 0.30,
    "na_eu_body": 0.453,
    "na_eu_tail": 4.67,
}

#: Figure 11(c): the NA/EU intersection class popularity is fit by a
#: body for ranks 1-45 and a steep tail for ranks 46-100.
INTERSECTION_ZIPF = {"split_rank": 45, "max_rank": 100}

#: "For North American peers, a query is in the set of North American
#: queries with a probability of 0.97, and with probability 0.03 in the
#: intersection set" (Section 4.6).
OWN_CLASS_PROBABILITY = 0.97


# ---------------------------------------------------------------------------
# Tables 1 and 2 -- reference counts for validation
# ---------------------------------------------------------------------------

PAPER_TABLE1: Dict[str, int] = {
    "query_messages": 34_425_154,
    "queryhit_messages": 1_339_540,
    "ping_messages": 27_159_805,
    "pong_messages": 17_807_992,
    "direct_connections": 4_361_965,
    "hop1_query_messages": 1_735_538,
}

PAPER_TABLE2: Dict[str, int] = {
    "initial_queries": 1_735_538,
    "initial_sessions": 4_361_965,
    "rule1_removed_queries": 410_513,
    "rule2_removed_queries": 841_656,
    "rule3_removed_queries": 310_164,
    "rule3_removed_sessions": 3_053_375,
    "final_queries": 173_195,
    "final_sessions": 1_308_590,
    "rule4_removed_queries": 77_058,
    "rule5_removed_queries": 14_715,
    "final_interarrival_queries": 81_432,
}


def _major(region: Region) -> Region:
    """Map OTHER onto the North American parameter set.

    The paper characterizes only the three major continents; synthetic
    peers from 'other' regions borrow the largest class's behaviour.
    """
    return Region.NORTH_AMERICA if region is Region.OTHER else region
