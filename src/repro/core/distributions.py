"""Model distribution families used by the IMC'04 workload characterization.

The paper (Appendix, Tables A.1-A.5 and Figure 11) models every workload
measure with one of four parametric families, sometimes spliced into a
body/tail mixture:

* **Lognormal** -- passive session duration (body and tail), number of
  queries per active session, time-until-first-query tail, interarrival
  body, time after last query.
* **Weibull** -- time-until-first-query body.  The paper writes the CDF as
  ``F(x) = 1 - exp(-lambda * x**alpha)`` (rate parameterization).
* **Pareto** -- query interarrival tail, ``CCDF(x) = (beta / x)**alpha``
  for ``x >= beta``.
* **Zipf-like** -- query popularity, ``p(r)`` proportional to ``r**-alpha``.

This module implements those families with a uniform interface
(:class:`Distribution`), plus the combinators the Appendix uses:
:class:`Truncated` for conditioning on an interval and :class:`Spliced`
for body/tail mixtures ("Body: 0-45 seconds (w%), Tail: > 45 seconds").
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "Distribution",
    "Lognormal",
    "Weibull",
    "Pareto",
    "Exponential",
    "Uniform",
    "Zipf",
    "Truncated",
    "Spliced",
    "Empirical",
]


def _as_array(x):
    return np.asarray(x, dtype=float)


class Distribution(ABC):
    """A continuous distribution on ``[0, inf)`` with inverse-CDF sampling."""

    @abstractmethod
    def cdf(self, x):
        """Return ``P[X <= x]`` (vectorized)."""

    @abstractmethod
    def ppf(self, q):
        """Return the quantile function (inverse CDF), vectorized."""

    def ccdf(self, x):
        """Return the complementary CDF ``P[X > x]``."""
        return 1.0 - self.cdf(x)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw samples via inverse-CDF on uniforms from ``rng``."""
        u = rng.random(size)
        return self.ppf(u)

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw exactly ``n`` samples as a flat float64 array.

        The bulk-sampling entry point of the vectorized generator
        backends, delegating to
        :func:`repro.core.kernels.distribution_sample_n`: one uniform
        batch, one vectorized ``ppf`` pass, always an array (``sample``
        returns a scalar for ``size=None`` and whatever shape ``ppf``
        preserves otherwise).
        """
        from .kernels import distribution_sample_n

        return distribution_sample_n(self, rng, n)

    def mean(self) -> float:
        """Analytic mean; subclasses without a closed form raise."""
        raise NotImplementedError(f"{type(self).__name__} has no closed-form mean")

    def median(self) -> float:
        return float(self.ppf(0.5))


class Lognormal(Distribution):
    """Lognormal distribution: ``ln X ~ Normal(mu, sigma**2)``.

    The paper states parameters as ``sigma`` and ``mu`` of the underlying
    normal, with all times measured in seconds.
    """

    def __init__(self, mu: float, sigma: float):
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def cdf(self, x):
        x = _as_array(x)
        out = np.zeros_like(x)
        pos = x > 0
        z = (np.log(x[pos]) - self.mu) / self.sigma
        out[pos] = 0.5 * (1.0 + _erf_vec(z / math.sqrt(2.0)))
        return out if out.shape else float(out)

    def ppf(self, q):
        q = _as_array(q)
        z = _norm_ppf_vec(q)
        out = np.exp(self.mu + self.sigma * z)
        return out if out.shape else float(out)

    def pdf(self, x):
        x = _as_array(x)
        out = np.zeros_like(x)
        pos = x > 0
        xp = x[pos]
        out[pos] = np.exp(-((np.log(xp) - self.mu) ** 2) / (2 * self.sigma**2)) / (
            xp * self.sigma * math.sqrt(2 * math.pi)
        )
        return out if out.shape else float(out)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def __repr__(self):
        return f"Lognormal(mu={self.mu:.4g}, sigma={self.sigma:.4g})"


class Weibull(Distribution):
    """Weibull in the paper's rate form: ``CDF(x) = 1 - exp(-lam * x**alpha)``.

    ``alpha`` is the shape and ``lam`` the rate (Table A.3 lists e.g.
    ``alpha = 1.477, lambda = 0.005252``).
    """

    def __init__(self, alpha: float, lam: float):
        if alpha <= 0 or lam <= 0:
            raise ValueError(f"alpha and lam must be positive, got {alpha}, {lam}")
        self.alpha = float(alpha)
        self.lam = float(lam)

    @property
    def scale(self) -> float:
        """Equivalent scale parameter of the standard parameterization."""
        return self.lam ** (-1.0 / self.alpha)

    def cdf(self, x):
        x = _as_array(x)
        out = np.zeros_like(x)
        pos = x > 0
        out[pos] = 1.0 - np.exp(-self.lam * x[pos] ** self.alpha)
        return out if out.shape else float(out)

    def ppf(self, q):
        q = _as_array(q)
        out = (-np.log1p(-q) / self.lam) ** (1.0 / self.alpha)
        return out if out.shape else float(out)

    def pdf(self, x):
        x = _as_array(x)
        out = np.zeros_like(x)
        pos = x > 0
        xp = x[pos]
        out[pos] = self.lam * self.alpha * xp ** (self.alpha - 1) * np.exp(-self.lam * xp**self.alpha)
        return out if out.shape else float(out)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.alpha)

    def __repr__(self):
        return f"Weibull(alpha={self.alpha:.4g}, lam={self.lam:.4g})"


class Pareto(Distribution):
    """Pareto distribution: ``CCDF(x) = (beta / x)**alpha`` for ``x >= beta``.

    Table A.4 uses this for the interarrival tail with ``beta = 103``.
    """

    def __init__(self, alpha: float, beta: float):
        if alpha <= 0 or beta <= 0:
            raise ValueError(f"alpha and beta must be positive, got {alpha}, {beta}")
        self.alpha = float(alpha)
        self.beta = float(beta)

    def cdf(self, x):
        x = _as_array(x)
        out = np.zeros_like(x)
        above = x >= self.beta
        out[above] = 1.0 - (self.beta / x[above]) ** self.alpha
        return out if out.shape else float(out)

    def ppf(self, q):
        q = _as_array(q)
        out = self.beta * (1.0 - q) ** (-1.0 / self.alpha)
        return out if out.shape else float(out)

    def pdf(self, x):
        x = _as_array(x)
        out = np.zeros_like(x)
        above = x >= self.beta
        out[above] = self.alpha * self.beta**self.alpha / x[above] ** (self.alpha + 1)
        return out if out.shape else float(out)

    def mean(self) -> float:
        if self.alpha <= 1:
            return math.inf
        return self.alpha * self.beta / (self.alpha - 1.0)

    def __repr__(self):
        return f"Pareto(alpha={self.alpha:.4g}, beta={self.beta:.4g})"


class Exponential(Distribution):
    """Exponential distribution with rate ``lam`` (arrival-process substrate)."""

    def __init__(self, lam: float):
        if lam <= 0:
            raise ValueError(f"lam must be positive, got {lam}")
        self.lam = float(lam)

    def cdf(self, x):
        x = _as_array(x)
        out = np.where(x > 0, 1.0 - np.exp(-self.lam * np.maximum(x, 0.0)), 0.0)
        return out if out.shape else float(out)

    def ppf(self, q):
        q = _as_array(q)
        out = -np.log1p(-q) / self.lam
        return out if out.shape else float(out)

    def mean(self) -> float:
        return 1.0 / self.lam

    def __repr__(self):
        return f"Exponential(lam={self.lam:.4g})"


class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if high <= low:
            raise ValueError(f"need high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def cdf(self, x):
        x = _as_array(x)
        out = np.clip((x - self.low) / (self.high - self.low), 0.0, 1.0)
        return out if out.shape else float(out)

    def ppf(self, q):
        q = _as_array(q)
        out = self.low + q * (self.high - self.low)
        return out if out.shape else float(out)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self):
        return f"Uniform({self.low:.4g}, {self.high:.4g})"


class Zipf:
    """Zipf-like distribution over ranks ``1..n``: ``p(r) ~ r**-alpha``.

    Not a :class:`Distribution` subclass because its support is discrete
    ranks, but it offers the same ``sample`` interface plus ``pmf``.
    """

    def __init__(self, alpha: float, n: int):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self.n = int(n)
        weights = np.arange(1, self.n + 1, dtype=float) ** (-self.alpha)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        self._table = None  # lazy kernels.CategoricalTable over _cdf

    def pmf(self, rank):
        """Probability of ``rank`` (1-based); zero outside ``1..n``."""
        rank = np.asarray(rank, dtype=int)
        out = np.zeros(rank.shape if rank.shape else (1,))
        flat_rank = np.atleast_1d(rank)
        valid = (flat_rank >= 1) & (flat_rank <= self.n)
        out = np.where(valid, self._pmf[np.clip(flat_rank, 1, self.n) - 1], 0.0)
        return out if rank.shape else float(out[0])

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw 1-based ranks (via the precomputed categorical table,
        draw-for-draw identical to ``searchsorted(cdf, u, 'left')``)."""
        if self._table is None:
            from .kernels import CategoricalTable

            self._table = CategoricalTable(self._cdf)
        ranks = self._table.lookup(rng.random(size)) + 1
        if size is None:
            return int(ranks)
        return ranks.astype(int)

    def __repr__(self):
        return f"Zipf(alpha={self.alpha:.4g}, n={self.n})"


class Truncated(Distribution):
    """``base`` conditioned on the interval ``(low, high]``.

    Used to realize the Appendix's body/tail components, e.g. a lognormal
    restricted to "> 2 minutes".
    """

    def __init__(self, base: Distribution, low: float = 0.0, high: float = math.inf):
        if high <= low:
            raise ValueError(f"need high > low, got ({low}, {high}]")
        self.base = base
        self.low = float(low)
        self.high = float(high)
        self._cdf_low = float(base.cdf(self.low)) if self.low > 0 else float(base.cdf(0.0))
        self._cdf_high = float(base.cdf(self.high)) if math.isfinite(self.high) else 1.0
        self._mass = self._cdf_high - self._cdf_low
        if self._mass <= 0:
            raise ValueError(
                f"base distribution {base!r} has no mass on ({low}, {high}]"
            )

    def cdf(self, x):
        x = _as_array(x)
        raw = np.clip((self.base.cdf(x) - self._cdf_low) / self._mass, 0.0, 1.0)
        raw = np.where(x < self.low, 0.0, raw)
        raw = np.where(x >= self.high, 1.0, raw)
        return raw if raw.shape else float(raw)

    def ppf(self, q):
        q = _as_array(q)
        out = self.base.ppf(self._cdf_low + q * self._mass)
        out = np.clip(out, self.low, self.high if math.isfinite(self.high) else np.inf)
        return out if out.shape else float(out)

    def __repr__(self):
        return f"Truncated({self.base!r}, ({self.low:.4g}, {self.high:.4g}])"


class Spliced(Distribution):
    """Body/tail mixture with an explicit boundary, as in Tables A.1-A.4.

    With probability ``body_weight`` a value is drawn from ``body``
    truncated to ``(body_low, boundary]``; otherwise from ``tail``
    truncated to ``(boundary, inf)``.  ``body_low`` realizes entries like
    Table A.1's "Body: 1-2 minutes": the filtered data starts at the
    64-second cutoff, so the body component only covers (64 s, 120 s].
    """

    def __init__(
        self,
        body: Distribution,
        tail: Distribution,
        boundary: float,
        body_weight: float,
        body_low: float = 0.0,
    ):
        if not 0.0 < body_weight < 1.0:
            raise ValueError(f"body_weight must be in (0, 1), got {body_weight}")
        if boundary <= 0:
            raise ValueError(f"boundary must be positive, got {boundary}")
        if not 0.0 <= body_low < boundary:
            raise ValueError(f"need 0 <= body_low < boundary, got {body_low}")
        self.boundary = float(boundary)
        self.body_weight = float(body_weight)
        self.body_low = float(body_low)
        self.body = Truncated(body, body_low, boundary)
        self.tail = Truncated(tail, boundary, math.inf)

    def cdf(self, x):
        x = _as_array(x)
        below = self.body_weight * self.body.cdf(np.minimum(x, self.boundary))
        above = (1.0 - self.body_weight) * self.tail.cdf(x)
        out = np.where(x <= self.boundary, below, self.body_weight + above)
        return out if out.shape else float(out)

    def ppf(self, q):
        q = _as_array(q)
        in_body = q <= self.body_weight
        qb = np.clip(q / self.body_weight, 0.0, 1.0)
        qt = np.clip((q - self.body_weight) / (1.0 - self.body_weight), 0.0, 1.0)
        out = np.where(in_body, self.body.ppf(qb), self.tail.ppf(qt))
        return out if out.shape else float(out)

    def __repr__(self):
        return (
            f"Spliced(body={self.body.base!r}, tail={self.tail.base!r}, "
            f"boundary={self.boundary:.4g}, body_weight={self.body_weight:.3g})"
        )


class Empirical(Distribution):
    """Empirical distribution of observed samples (inverse-transform on sorted data)."""

    def __init__(self, samples: Sequence[float]):
        data = np.sort(np.asarray(samples, dtype=float))
        if data.size == 0:
            raise ValueError("need at least one sample")
        self.data = data

    def cdf(self, x):
        x = _as_array(x)
        out = np.searchsorted(self.data, x, side="right") / self.data.size
        return out if out.shape else float(out)

    def ppf(self, q):
        q = _as_array(q)
        idx = np.clip((q * self.data.size).astype(int), 0, self.data.size - 1)
        out = self.data[idx]
        return out if out.shape else float(out)

    def mean(self) -> float:
        return float(self.data.mean())

    def __repr__(self):
        return f"Empirical(n={self.data.size})"


def _erf_vec(z):
    """Vectorized error function (avoids importing scipy at module load)."""
    from scipy.special import erf

    return erf(z)


def _norm_ppf_vec(q):
    """Vectorized standard normal quantile function."""
    from scipy.special import ndtri

    q = np.clip(q, 1e-15, 1.0 - 1e-15)
    return ndtri(q)
