"""The workload model: a bundle of the paper's conditional distributions.

:class:`WorkloadModel` groups every distribution the Figure 12 generator
needs, keyed exactly the way the paper conditions them:

====================  =====================================================
measure               conditioned on
====================  =====================================================
region mix            time of day (Fig. 1)
passive probability   region (Fig. 4)
passive duration      region, peak/non-peak (Table A.1, Fig. 5)
queries per session   region (Table A.2, Fig. 6)
time to first query   region, peak/non-peak, #queries (Table A.3, Fig. 7)
interarrival time     region, peak/non-peak, #queries for EU only
                      (Table A.4, Fig. 8)
time after last query region, peak/non-peak, #queries (Table A.5, Fig. 9)
====================  =====================================================

``WorkloadModel.paper()`` returns the model with the published (and
derived, see :mod:`repro.core.parameters`) values.  A model can also be
constructed from distributions *fitted to a trace*, which is how the
closed-loop validation benchmark works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from . import parameters
from .distributions import Distribution, Lognormal
from .regions import Region

__all__ = ["WorkloadModel"]

#: (region, peak, n_queries) -> Distribution
ConditionalFactory = Callable[[Region, bool, int], Distribution]


@dataclass
class WorkloadModel:
    """All conditional distributions needed by the Fig. 12 generator."""

    geographic_mix: Callable[[int], Dict[Region, float]]
    passive_fraction: Callable[[Region, int], float]
    passive_duration: Callable[[Region, bool], Distribution]
    queries_per_session: Callable[[Region], Distribution]
    first_query: ConditionalFactory
    interarrival: ConditionalFactory
    last_query: ConditionalFactory
    name: str = "custom"

    @classmethod
    def paper(cls) -> "WorkloadModel":
        """The model published in the paper (Tables A.1-A.5, Figs. 1 and 4)."""
        return cls(
            geographic_mix=parameters.geographic_mix,
            passive_fraction=parameters.passive_fraction,
            passive_duration=parameters.passive_duration_model,
            queries_per_session=parameters.queries_per_session_model,
            first_query=parameters.first_query_model,
            interarrival=parameters.interarrival_model,
            last_query=parameters.last_query_model,
            name="paper",
        )

    @classmethod
    def from_fits(
        cls,
        passive_duration: Dict[tuple, Distribution],
        queries_per_session: Dict[Region, Distribution],
        first_query: Dict[tuple, Distribution],
        interarrival: Dict[tuple, Distribution],
        last_query: Dict[tuple, Distribution],
        name: str = "fitted",
    ) -> "WorkloadModel":
        """Build a model from fitted conditional distributions.

        Dictionary keys follow the conditioning of the paper:
        ``passive_duration[(region, peak)]``,
        ``first_query[(region, peak, class_label)]`` with class labels
        from :func:`repro.core.parameters.first_query_class`, etc.
        Missing keys fall back to the paper model, so partial fits remain
        usable.
        """
        paper = cls.paper()

        def _passive(region: Region, peak: bool) -> Distribution:
            return passive_duration.get((region, peak)) or paper.passive_duration(region, peak)

        def _qps(region: Region) -> Distribution:
            return queries_per_session.get(region) or paper.queries_per_session(region)

        def _first(region: Region, peak: bool, n: int) -> Distribution:
            key = (region, peak, parameters.first_query_class(n))
            return first_query.get(key) or paper.first_query(region, peak, n)

        def _inter(region: Region, peak: bool, n: int) -> Distribution:
            key = (region, peak, parameters.interarrival_query_class(n))
            return interarrival.get(key) or interarrival.get((region, peak, None)) or paper.interarrival(region, peak, n)

        def _last(region: Region, peak: bool, n: int) -> Distribution:
            key = (region, peak, parameters.last_query_class(n))
            return last_query.get(key) or paper.last_query(region, peak, n)

        return cls(
            geographic_mix=paper.geographic_mix,
            passive_fraction=paper.passive_fraction,
            passive_duration=_passive,
            queries_per_session=_qps,
            first_query=_first,
            interarrival=_inter,
            last_query=_last,
            name=name,
        )
