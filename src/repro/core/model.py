"""The workload model: a bundle of the paper's conditional distributions.

:class:`WorkloadModel` groups every distribution the Figure 12 generator
needs, keyed exactly the way the paper conditions them:

====================  =====================================================
measure               conditioned on
====================  =====================================================
region mix            time of day (Fig. 1)
passive probability   region (Fig. 4)
passive duration      region, peak/non-peak (Table A.1, Fig. 5)
queries per session   region (Table A.2, Fig. 6)
time to first query   region, peak/non-peak, #queries (Table A.3, Fig. 7)
interarrival time     region, peak/non-peak, #queries for EU only
                      (Table A.4, Fig. 8)
time after last query region, peak/non-peak, #queries (Table A.5, Fig. 9)
====================  =====================================================

``WorkloadModel.paper()`` returns the model with the published (and
derived, see :mod:`repro.core.parameters`) values.  A model can also be
constructed from distributions *fitted to a trace*, which is how the
closed-loop validation benchmark works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from . import parameters
from .distributions import Distribution, Lognormal
from .regions import MAJOR_REGIONS, Region

__all__ = [
    "WorkloadModel",
    "first_query_class_codes",
    "interarrival_class_codes",
    "last_query_class_codes",
]

#: Representative query counts, one per conditioning class, used to
#: materialize the finitely many distinct conditional distributions the
#: factories can return (Tables A.3-A.5 condition on *classes* of
#: ``n_queries``, not on the exact count).  Index ``i`` of each tuple is
#: the class code the matching ``*_class_codes`` helper assigns.
_FIRST_QUERY_CLASS_REPS = (1, 3, 4)    # "<3", "=3", ">3"
_INTERARRIVAL_CLASS_REPS = (2, 5, 8)   # "=2", "3-7", ">7"
_LAST_QUERY_CLASS_REPS = (1, 5, 8)     # "1", "2-7", ">7"


def first_query_class_codes(n_queries: np.ndarray) -> np.ndarray:
    """Vectorized Table A.3 class code (0: <3, 1: =3, 2: >3) per session."""
    n_queries = np.asarray(n_queries)
    return np.where(n_queries < 3, 0, np.where(n_queries == 3, 1, 2)).astype(np.int8)


def interarrival_class_codes(n_queries: np.ndarray) -> np.ndarray:
    """Vectorized Fig. 8b class code (0: =2, 1: 3-7, 2: >7) per session."""
    n_queries = np.asarray(n_queries)
    return np.where(n_queries <= 2, 0, np.where(n_queries <= 7, 1, 2)).astype(np.int8)


def last_query_class_codes(n_queries: np.ndarray) -> np.ndarray:
    """Vectorized Table A.5 class code (0: 1, 1: 2-7, 2: >7) per session."""
    n_queries = np.asarray(n_queries)
    return np.where(n_queries <= 1, 0, np.where(n_queries <= 7, 1, 2)).astype(np.int8)

#: (region, peak, n_queries) -> Distribution
ConditionalFactory = Callable[[Region, bool, int], Distribution]


@dataclass
class WorkloadModel:
    """All conditional distributions needed by the Fig. 12 generator."""

    geographic_mix: Callable[[int], Dict[Region, float]]
    passive_fraction: Callable[[Region, int], float]
    passive_duration: Callable[[Region, bool], Distribution]
    queries_per_session: Callable[[Region], Distribution]
    first_query: ConditionalFactory
    interarrival: ConditionalFactory
    last_query: ConditionalFactory
    name: str = "custom"

    @classmethod
    def paper(cls) -> "WorkloadModel":
        """The model published in the paper (Tables A.1-A.5, Figs. 1 and 4)."""
        return cls(
            geographic_mix=parameters.geographic_mix,
            passive_fraction=parameters.passive_fraction,
            passive_duration=parameters.passive_duration_model,
            queries_per_session=parameters.queries_per_session_model,
            first_query=parameters.first_query_model,
            interarrival=parameters.interarrival_model,
            last_query=parameters.last_query_model,
            name="paper",
        )

    def conditional_grid(self) -> Dict[str, dict]:
        """Materialize every conditional distribution as a picklable grid.

        The factory callables condition ``first_query``/``interarrival``/
        ``last_query`` on *classes* of the query count (the paper's
        Tables A.3-A.5 bins), so the whole model collapses to a finite
        grid of distribution objects.  The grid is what the columnar
        generator ships to shard workers: the distributions themselves
        pickle cleanly even when the factories are closures (fitted
        models).  Keys use integer codes -- major-region index
        (:data:`~repro.core.regions.MAJOR_REGIONS` order), a peak flag,
        and the class code assigned by the ``*_class_codes`` helpers:

        * ``queries_per_session[region]``
        * ``passive_duration[region, peak]``
        * ``first_query`` / ``interarrival`` / ``last_query``
          ``[region, peak, class_code]``

        Custom models whose factories vary *within* a class are sampled
        at the class representative; the event backend remains the
        reference engine for such conditioning.
        """
        grid: Dict[str, dict] = {
            "queries_per_session": {},
            "passive_duration": {},
            "first_query": {},
            "interarrival": {},
            "last_query": {},
        }
        for code, region in enumerate(MAJOR_REGIONS):
            grid["queries_per_session"][code] = self.queries_per_session(region)
            for peak in (False, True):
                grid["passive_duration"][code, peak] = self.passive_duration(region, peak)
                for ci, n in enumerate(_FIRST_QUERY_CLASS_REPS):
                    grid["first_query"][code, peak, ci] = self.first_query(region, peak, n)
                for ci, n in enumerate(_INTERARRIVAL_CLASS_REPS):
                    grid["interarrival"][code, peak, ci] = self.interarrival(region, peak, n)
                for ci, n in enumerate(_LAST_QUERY_CLASS_REPS):
                    grid["last_query"][code, peak, ci] = self.last_query(region, peak, n)
        return grid

    @classmethod
    def from_fits(
        cls,
        passive_duration: Dict[tuple, Distribution],
        queries_per_session: Dict[Region, Distribution],
        first_query: Dict[tuple, Distribution],
        interarrival: Dict[tuple, Distribution],
        last_query: Dict[tuple, Distribution],
        name: str = "fitted",
    ) -> "WorkloadModel":
        """Build a model from fitted conditional distributions.

        Dictionary keys follow the conditioning of the paper:
        ``passive_duration[(region, peak)]``,
        ``first_query[(region, peak, class_label)]`` with class labels
        from :func:`repro.core.parameters.first_query_class`, etc.
        Missing keys fall back to the paper model, so partial fits remain
        usable.
        """
        paper = cls.paper()

        def _passive(region: Region, peak: bool) -> Distribution:
            return passive_duration.get((region, peak)) or paper.passive_duration(region, peak)

        def _qps(region: Region) -> Distribution:
            return queries_per_session.get(region) or paper.queries_per_session(region)

        def _first(region: Region, peak: bool, n: int) -> Distribution:
            key = (region, peak, parameters.first_query_class(n))
            return first_query.get(key) or paper.first_query(region, peak, n)

        def _inter(region: Region, peak: bool, n: int) -> Distribution:
            key = (region, peak, parameters.interarrival_query_class(n))
            return interarrival.get(key) or interarrival.get((region, peak, None)) or paper.interarrival(region, peak, n)

        def _last(region: Region, peak: bool, n: int) -> Distribution:
            key = (region, peak, parameters.last_query_class(n))
            return last_query.get(key) or paper.last_query(region, peak, n)

        return cls(
            geographic_mix=paper.geographic_mix,
            passive_fraction=paper.passive_fraction,
            passive_duration=_passive,
            queries_per_session=_qps,
            first_query=_first,
            interarrival=_inter,
            last_query=_last,
            name=name,
        )
