"""Shared event and session dataclasses.

These records flow between the synthesis, measurement, filtering, and
analysis layers.  A :class:`QueryRecord` corresponds to one QUERY message
observed at hop count 1; a :class:`SessionRecord` corresponds to one
connected one-hop peer session (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from .regions import Region

__all__ = ["QueryRecord", "SessionRecord", "GeneratedQuery", "GeneratedSession"]


@dataclass(frozen=True)
class QueryRecord:
    """One QUERY message received from a one-hop peer.

    ``timestamp`` is seconds since the trace epoch.  ``keywords`` is the
    normalized query string (the Gnutella notion of query identity is the
    keyword set, Section 3.2).  ``sha1`` marks the SHA1 extension used by
    download-resume re-queries (filter rule 1).
    """

    timestamp: float
    keywords: str
    sha1: bool = False
    hops: int = 1
    ttl: int = 7
    automated: bool = False  # ground-truth flag: emitted by client software
    #: Number of QUERYHIT responses observed for this query (the paper's
    #: stated future work: "characterizing the query hit rate of the
    #: peers").  Zero means no responder was recorded.
    hits: int = 0

    def __post_init__(self):
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.timestamp}")
        if self.hops < 0 or self.ttl < 0:
            raise ValueError("hops and ttl must be non-negative")
        if self.hits < 0:
            raise ValueError(f"hits must be non-negative, got {self.hits}")


@dataclass(frozen=True)
class SessionRecord:
    """One connected one-hop peer session, as reconstructed by the monitor.

    ``end`` includes the ~30 s idle-detection overestimate the paper
    documents (Section 3.2).  ``queries`` are in timestamp order.
    """

    peer_ip: str
    region: Region
    start: float
    end: float
    queries: Tuple[QueryRecord, ...] = ()
    user_agent: str = "unknown"
    ultrapeer: bool = False
    shared_files: int = 0

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"session ends ({self.end}) before it starts ({self.start})")
        times = [q.timestamp for q in self.queries]
        if times != sorted(times):
            raise ValueError("queries must be in timestamp order")

    @property
    def duration(self) -> float:
        """Connected session duration in seconds."""
        return self.end - self.start

    @property
    def is_passive(self) -> bool:
        """Passive sessions issue no queries (Section 4)."""
        return not self.queries

    @property
    def query_count(self) -> int:
        return len(self.queries)

    @property
    def time_until_first_query(self) -> Optional[float]:
        """Seconds from connect to first query, or None for passive sessions."""
        if not self.queries:
            return None
        return self.queries[0].timestamp - self.start

    @property
    def time_after_last_query(self) -> Optional[float]:
        """Seconds from last query to disconnect, or None for passive sessions."""
        if not self.queries:
            return None
        return self.end - self.queries[-1].timestamp

    def interarrival_times(self) -> List[float]:
        """Successive query interarrival times in seconds."""
        times = [q.timestamp for q in self.queries]
        return [b - a for a, b in zip(times, times[1:])]

    def with_queries(self, queries: Tuple[QueryRecord, ...]) -> "SessionRecord":
        """A copy of this session carrying a different query tuple."""
        return replace(self, queries=tuple(queries))


@dataclass(frozen=True)
class GeneratedQuery:
    """One query emitted by the Fig. 12 synthetic workload generator."""

    offset: float  # seconds since session start
    keywords: str
    rank: int
    query_class: str  # which of the seven geographic query classes


@dataclass
class GeneratedSession:
    """One synthetic peer session produced by the Fig. 12 generator."""

    region: Region
    start: float
    duration: float
    passive: bool
    queries: List[GeneratedQuery] = field(default_factory=list)

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def query_count(self) -> int:
        return len(self.queries)
