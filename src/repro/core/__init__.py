"""Core workload model: the paper's primary contribution.

This subpackage contains the model distribution families (Appendix),
the published parameter tables, the query popularity model (Section 4.6),
and the Figure 12 synthetic workload generator.
"""

from .kernels import segmented_arange, segmented_cumsum
from .distributions import (
    Distribution,
    Empirical,
    Exponential,
    Lognormal,
    Pareto,
    Spliced,
    Truncated,
    Uniform,
    Weibull,
    Zipf,
)
from .events import GeneratedQuery, GeneratedSession, QueryRecord, SessionRecord
from .fitting import (
    SplicedFit,
    ZipfFit,
    fit_lognormal,
    fit_pareto,
    fit_spliced,
    fit_weibull,
    fit_zipf,
    fit_zipf_body_tail,
    ks_distance,
)
from .generator import SyntheticWorkloadGenerator
from .generator_columnar import (
    ColumnarWorkload,
    GeneratorTables,
    generate_columnar_workload,
    major_region_cum,
)
from .model import (
    WorkloadModel,
    first_query_class_codes,
    interarrival_class_codes,
    last_query_class_codes,
)
from .popularity import (
    BodyTailZipf,
    ClassRankSampler,
    QueryClassId,
    QueryUniverse,
    SampledQuery,
    region_class_probabilities,
    top_n_overlap,
    zipf_for_class,
)
from .runtime import available_cpus, host_block, peak_rss_mb
from .regions import (
    KEY_PERIODS,
    MAJOR_REGIONS,
    PEAK_HOURS,
    KeyPeriod,
    Region,
    hour_of_day,
    is_peak_hour,
    local_hour,
)
from .stats import Ccdf, TimeOfDayBinner, ccdf_at, empirical_ccdf, log_bins, rank_pmf
from .validation import (
    ComparisonVerdict,
    KsResult,
    ccdf_max_gap,
    compare_models,
    ks_two_sample,
    quantile_report,
)
from .workload_io import (
    from_jsonl,
    from_npz,
    session_record,
    to_csv,
    to_event_schedule,
    to_jsonl,
    to_npz,
)

__all__ = [
    # arrays / runtime
    "available_cpus", "host_block", "peak_rss_mb", "segmented_arange", "segmented_cumsum",
    # distributions
    "Distribution", "Empirical", "Exponential", "Lognormal", "Pareto",
    "Spliced", "Truncated", "Uniform", "Weibull", "Zipf",
    # events
    "GeneratedQuery", "GeneratedSession", "QueryRecord", "SessionRecord",
    # fitting
    "SplicedFit", "ZipfFit", "fit_lognormal", "fit_pareto", "fit_spliced",
    "fit_weibull", "fit_zipf", "fit_zipf_body_tail", "ks_distance",
    # generator / model
    "SyntheticWorkloadGenerator", "WorkloadModel",
    "ColumnarWorkload", "GeneratorTables", "generate_columnar_workload",
    "major_region_cum", "first_query_class_codes", "interarrival_class_codes",
    "last_query_class_codes",
    # popularity
    "BodyTailZipf", "ClassRankSampler", "QueryClassId", "QueryUniverse",
    "SampledQuery", "region_class_probabilities", "top_n_overlap",
    "zipf_for_class",
    # regions
    "KEY_PERIODS", "MAJOR_REGIONS", "PEAK_HOURS", "KeyPeriod", "Region",
    "hour_of_day", "is_peak_hour", "local_hour",
    # stats
    "Ccdf", "TimeOfDayBinner", "ccdf_at", "empirical_ccdf", "log_bins", "rank_pmf",
    # validation
    "ComparisonVerdict", "KsResult", "ccdf_max_gap", "compare_models",
    "ks_two_sample", "quantile_report",
    # workload io
    "from_jsonl", "from_npz", "session_record", "to_csv", "to_event_schedule",
    "to_jsonl", "to_npz",
]
