"""Geographic regions and the paper's time-of-day structure.

The paper characterizes peers in the three continents where most peers
reside (Section 4.1) and expresses every time-of-day result in local time
at the measurement node (Dortmund, Germany).  Section 4.2 identifies four
key one-hour periods and classifies them as peak or non-peak ("sink") per
region; the Appendix tables condition on that peak/non-peak split.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Tuple

__all__ = [
    "Region",
    "KeyPeriod",
    "KEY_PERIODS",
    "REGION_UTC_OFFSET_HOURS",
    "PEAK_HOURS",
    "is_peak_hour",
    "hour_of_day",
    "TRACE_EPOCH_DESCRIPTION",
]

#: The trace epoch: 2004-03-15 00:00 at the measurement node (Dortmund).
#: All simulation timestamps are seconds since this instant, measurement-
#: node local time (the paper's time axis).
TRACE_EPOCH_DESCRIPTION = "2004-03-15 00:00 CET (measurement node, Dortmund)"


class Region(enum.Enum):
    """Geographic region of a peer, as resolved by the GeoIP database."""

    NORTH_AMERICA = "north_america"
    EUROPE = "europe"
    ASIA = "asia"
    OTHER = "other"

    @property
    def short(self) -> str:
        return {"north_america": "NA", "europe": "EU", "asia": "AS", "other": "OT"}[self.value]


#: The three continents the paper characterizes (Section 4.1).
MAJOR_REGIONS: Tuple[Region, ...] = (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA)

#: Representative offset of each region's population from measurement-node
#: time.  North American peers live ~6-9 hours behind Dortmund; we use -7.
#: Asian peers ~6-8 ahead; we use +7.
REGION_UTC_OFFSET_HOURS: Dict[Region, int] = {
    Region.NORTH_AMERICA: -7,
    Region.EUROPE: 0,
    Region.ASIA: 7,
    Region.OTHER: 3,
}


class KeyPeriod(enum.Enum):
    """The four key one-hour periods of Section 4.2 (measurement-node time)."""

    H03 = 3   # peak in North America, sink for Europe
    H11 = 11  # sink for North America, peak for Europe
    H13 = 13  # sink for NA, peak for Europe, peak for Asia
    H19 = 19  # joint peak for North America and Europe

    @property
    def start_hour(self) -> int:
        return self.value

    @property
    def label(self) -> str:
        return f"{self.value:02d}:00-{self.value + 1:02d}:00"


KEY_PERIODS: Tuple[KeyPeriod, ...] = tuple(KeyPeriod)

#: Hours (measurement-node time) during which each region's query load is
#: high.  Derived from Section 4.2: North America peaks around 03:00-04:00
#: and 19:00-20:00 (its evening), Europe from noon to midnight, Asia in
#: its afternoon/evening which falls in the Dortmund morning (~06:00-16:00).
PEAK_HOURS: Dict[Region, FrozenSet[int]] = {
    Region.NORTH_AMERICA: frozenset(range(0, 6)) | frozenset(range(19, 24)),
    Region.EUROPE: frozenset(range(11, 24)),
    Region.ASIA: frozenset(range(6, 17)),
    Region.OTHER: frozenset(range(8, 20)),
}


def hour_of_day(timestamp: float) -> int:
    """Hour of day (0-23) at the measurement node for a trace timestamp."""
    return int((timestamp % 86400.0) // 3600.0)


def is_peak_hour(region: Region, timestamp: float) -> bool:
    """Whether ``timestamp`` falls in a peak period for ``region``."""
    return hour_of_day(timestamp) in PEAK_HOURS[region]


def local_hour(region: Region, timestamp: float) -> int:
    """Hour of day in the region's representative local time."""
    return int(((timestamp / 3600.0) + REGION_UTC_OFFSET_HOURS[region]) % 24)


__all__.extend(["MAJOR_REGIONS", "local_hour"])
