"""Deprecated shim: the segmented primitives moved to :mod:`repro.core.kernels`.

This module is kept so external ``from repro.core.arrays import ...``
call sites don't break; new code should import from
:mod:`repro.core.kernels`, which routes through the pluggable array
backend (this shim re-exports the same dispatching functions, so old
imports pick up backend selection too).
"""

from __future__ import annotations

from .kernels import segmented_arange, segmented_cumsum

__all__ = ["segmented_arange", "segmented_cumsum"]
