"""Segmented (ragged) array primitives for the vectorized synthesis path.

The columnar synthesizer works on *flat* arrays carrying one element per
query, grouped into variable-length per-session segments described by a
``counts`` vector.  These two helpers are the primitives everything else
is built from: a per-segment ``arange`` (for scattering group draws back
into session-major order) and a per-segment ``cumsum`` (for turning
inter-query gaps into query offsets) -- each a couple of NumPy ops, no
Python loop over segments.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segmented_arange", "segmented_cumsum"]


def segmented_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]), [0..counts[1]), ...`` as one flat int64 array."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    starts = ends - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def segmented_cumsum(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-segment cumulative sum of ``values`` (inclusive).

    ``values`` is flat segment-major data; segment ``i`` owns the next
    ``counts[i]`` elements.  Equivalent to ``np.cumsum`` applied to each
    segment independently.
    """
    values = np.asarray(values, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.int64)
    if values.size == 0:
        return np.zeros(0, dtype=np.float64)
    running = np.cumsum(values)
    ends = np.cumsum(counts)
    starts = ends - counts
    base = np.where(starts > 0, running[starts - 1], 0.0)
    return running - np.repeat(base, counts)
