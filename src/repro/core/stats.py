"""Empirical statistics helpers shared by analysis and fitting code.

These utilities produce the exact curve shapes the paper plots:
complementary CDFs on log axes (Figures 5-9), per-rank PMFs on log-log
axes (Figure 11), and time-of-day binned averages (Figures 1, 3, 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "Ccdf",
    "empirical_ccdf",
    "ccdf_at",
    "rank_pmf",
    "log_bins",
    "TimeOfDayBinner",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
]

SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR


@dataclass(frozen=True)
class Ccdf:
    """An empirical complementary CDF: ``fraction[i] = P[X > x[i]]``."""

    x: np.ndarray
    fraction: np.ndarray

    def at(self, value: float) -> float:
        """Interpolated ``P[X > value]`` (step interpolation, right-continuous)."""
        idx = np.searchsorted(self.x, value, side="right") - 1
        if idx < 0:
            return 1.0
        return float(self.fraction[idx])

    def quantile_exceeded(self, fraction: float) -> float:
        """Smallest x with ``P[X > x] <= fraction`` (a tail quantile)."""
        idx = np.searchsorted(-self.fraction, -fraction, side="left")
        idx = min(idx, self.x.size - 1)
        return float(self.x[idx])

    def __len__(self) -> int:
        return int(self.x.size)


def empirical_ccdf(samples: Sequence[float]) -> Ccdf:
    """Build the empirical CCDF of ``samples``.

    Returns unique sorted values ``x`` with ``fraction = P[X > x]``
    computed from sample counts, the form the paper plots on log axes.
    """
    data = np.sort(np.asarray(samples, dtype=float))
    if data.size == 0:
        raise ValueError("need at least one sample")
    values, counts = np.unique(data, return_counts=True)
    exceed = data.size - np.cumsum(counts)
    return Ccdf(x=values, fraction=exceed / data.size)


def ccdf_at(samples: Sequence[float], points: Sequence[float]) -> np.ndarray:
    """Evaluate the empirical CCDF of ``samples`` at the given ``points``."""
    data = np.sort(np.asarray(samples, dtype=float))
    points = np.asarray(points, dtype=float)
    if data.size == 0:
        raise ValueError("need at least one sample")
    return 1.0 - np.searchsorted(data, points, side="right") / data.size


def rank_pmf(counts: Mapping[str, int], top: int = 0) -> np.ndarray:
    """Return the rank-ordered normalized frequency vector of query counts.

    ``counts`` maps query string -> observation count.  The result is
    sorted descending and normalized; ``top`` (if positive) truncates to
    the most popular ranks, matching the paper's top-100 popularity plots.
    """
    if not counts:
        raise ValueError("need at least one query")
    freq = np.sort(np.asarray(list(counts.values()), dtype=float))[::-1]
    if top > 0:
        freq = freq[:top]
    return freq / freq.sum()


def log_bins(low: float, high: float, per_decade: int = 10) -> np.ndarray:
    """Logarithmically spaced evaluation points spanning ``[low, high]``."""
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got [{low}, {high}]")
    n = max(2, int(np.ceil(np.log10(high / low) * per_decade)) + 1)
    return np.logspace(np.log10(low), np.log10(high), n)


class TimeOfDayBinner:
    """Accumulate per-day values into time-of-day bins.

    Each observation carries an absolute timestamp (seconds since the
    trace epoch, measurement-node local time).  Values land in bin
    ``(t % 86400) // bin_seconds`` of day ``t // 86400``.  The binner
    reports per-bin averages across days plus the min/max day curves
    drawn in Figures 3 and 4.
    """

    def __init__(self, bin_seconds: int = SECONDS_PER_HOUR):
        if SECONDS_PER_DAY % bin_seconds:
            raise ValueError(f"bin_seconds must divide a day, got {bin_seconds}")
        self.bin_seconds = bin_seconds
        self.n_bins = SECONDS_PER_DAY // bin_seconds
        self._per_day: Dict[int, np.ndarray] = {}

    def add(self, timestamp: float, value: float = 1.0) -> None:
        """Add ``value`` to the bin containing ``timestamp``."""
        day = int(timestamp // SECONDS_PER_DAY)
        slot = int((timestamp % SECONDS_PER_DAY) // self.bin_seconds)
        if day not in self._per_day:
            self._per_day[day] = np.zeros(self.n_bins)
        self._per_day[day][slot] += value

    def add_array(self, timestamps: np.ndarray, values: np.ndarray = None) -> None:
        """Vectorized :meth:`add` over timestamp (and optional value) arrays.

        Count-style accumulations (integer-valued ``values``) match the
        scalar loop bit-exactly: float64 integer sums are exact well past
        any trace size, so the accumulation order cannot matter.
        """
        ts = np.asarray(timestamps, dtype=np.float64)
        if ts.size == 0:
            return
        days = (ts // SECONDS_PER_DAY).astype(np.int64)
        slots = ((ts % SECONDS_PER_DAY) // self.bin_seconds).astype(np.int64)
        if values is None:
            vals = np.ones(ts.size)
        else:
            vals = np.asarray(values, dtype=np.float64)
        for day in np.unique(days):
            mask = days == day
            key = int(day)
            if key not in self._per_day:
                self._per_day[key] = np.zeros(self.n_bins)
            np.add.at(self._per_day[key], slots[mask], vals[mask])

    @property
    def days(self) -> List[int]:
        return sorted(self._per_day)

    def day_curve(self, day: int) -> np.ndarray:
        """The raw per-bin totals for one day."""
        return self._per_day[day].copy()

    def average(self) -> np.ndarray:
        """Per-bin average across all observed days (Figure 3 'Average')."""
        return self._matrix().mean(axis=0)

    def minimum(self) -> np.ndarray:
        """Per-bin minimum across days (Figure 3 'Min')."""
        return self._matrix().min(axis=0)

    def maximum(self) -> np.ndarray:
        """Per-bin maximum across days (Figure 3 'Max')."""
        return self._matrix().max(axis=0)

    def bin_starts_hours(self) -> np.ndarray:
        """Start of each bin in hours, for labeling the time axis."""
        return np.arange(self.n_bins) * (self.bin_seconds / SECONDS_PER_HOUR)

    def _matrix(self) -> np.ndarray:
        if not self._per_day:
            raise ValueError("no observations added")
        return np.stack([self._per_day[d] for d in self.days])


def ratio_binner_fraction(
    numerator: TimeOfDayBinner, denominator: TimeOfDayBinner
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-bin (avg, min, max across days) of numerator/denominator ratios.

    Used for Figure 4: fraction of sessions starting in each bin that are
    passive.  Bins with a zero denominator on a given day are excluded
    from that day's ratio.
    """
    days = sorted(set(numerator.days) & set(denominator.days))
    if not days:
        raise ValueError("no overlapping days between binners")
    ratios = []
    for day in days:
        num = numerator.day_curve(day)
        den = denominator.day_curve(day)
        with np.errstate(divide="ignore", invalid="ignore"):
            r = np.where(den > 0, num / np.maximum(den, 1e-12), np.nan)
        ratios.append(r)
    mat = np.stack(ratios)
    avg = np.nanmean(mat, axis=0)
    lo = np.nanmin(mat, axis=0)
    hi = np.nanmax(mat, axis=0)
    return avg, lo, hi


__all__.append("ratio_binner_fraction")
