"""Exporting and importing generated workloads.

The paper's purpose is to hand system designers a synthetic workload;
downstream simulators consume flat event schedules, not Python objects.
This module provides:

* :func:`to_jsonl` / :func:`from_jsonl` -- lossless session round-trip;
* :func:`to_csv` -- one row per session with summary columns;
* :func:`to_event_schedule` -- a flat, time-ordered (time, peer, event,
  detail) list: ``connect`` / ``query`` / ``disconnect`` events that any
  discrete-event simulator can replay;
* :func:`to_npz` / :func:`from_npz` -- lossless, compressed columnar
  round-trip for :class:`~repro.core.generator_columnar.ColumnarWorkload`
  (the native output of the vectorized backend; orders of magnitude
  smaller and faster to load than JSONL at large ``n_peers``).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Tuple, Union

import numpy as np

from .events import GeneratedQuery, GeneratedSession
from .generator_columnar import ColumnarWorkload
from .regions import Region

__all__ = [
    "session_record", "to_jsonl", "from_jsonl", "to_csv",
    "to_event_schedule", "to_npz", "from_npz",
]

PathLike = Union[str, Path]

#: Format tag stored inside the archive so loads fail loudly on foreign files.
_NPZ_FORMAT = "repro-columnar-workload-v1"


def session_record(session: GeneratedSession) -> dict:
    """The canonical JSON-able record for one session.

    The single schema every JSONL emitter shares -- :func:`to_jsonl`,
    the CLI's streamed ``generate --out``, and the service layer's
    debug codec -- so :func:`from_jsonl` can read any of them back.
    """
    return {
        "region": session.region.value,
        "start": session.start,
        "duration": session.duration,
        "passive": session.passive,
        "queries": [
            {"offset": q.offset, "keywords": q.keywords,
             "rank": q.rank, "query_class": q.query_class}
            for q in session.queries
        ],
    }


def to_jsonl(sessions: Iterable[GeneratedSession], path: PathLike) -> int:
    """Write sessions as JSON lines (streamed); returns the number written."""
    count = 0
    with Path(path).open("w") as fh:
        for session in sessions:
            fh.write(json.dumps(session_record(session)) + "\n")
            count += 1
    return count


def from_jsonl(path: PathLike) -> List[GeneratedSession]:
    """Read sessions previously written by :func:`to_jsonl`."""
    sessions: List[GeneratedSession] = []
    with Path(path).open() as fh:
        for line_number, line in enumerate(fh, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON") from exc
            sessions.append(
                GeneratedSession(
                    region=Region(record["region"]),
                    start=float(record["start"]),
                    duration=float(record["duration"]),
                    passive=bool(record["passive"]),
                    queries=[GeneratedQuery(**q) for q in record["queries"]],
                )
            )
    return sessions


def to_csv(sessions: Iterable[GeneratedSession], path: PathLike) -> int:
    """Write a per-session summary CSV; returns the number of rows."""
    count = 0
    with Path(path).open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["region", "start", "duration", "passive", "n_queries",
             "first_query_offset", "last_query_offset"]
        )
        for session in sessions:
            offsets = [q.offset for q in session.queries]
            writer.writerow([
                session.region.short,
                f"{session.start:.3f}",
                f"{session.duration:.3f}",
                int(session.passive),
                len(offsets),
                f"{offsets[0]:.3f}" if offsets else "",
                f"{offsets[-1]:.3f}" if offsets else "",
            ])
            count += 1
    return count


def to_event_schedule(
    sessions: Iterable[GeneratedSession],
) -> List[Tuple[float, int, str, str]]:
    """Flatten sessions into a time-ordered event list.

    Returns ``(time, peer_id, event, detail)`` tuples where ``event`` is
    one of ``connect``, ``query``, ``disconnect`` and ``detail`` carries
    the region (connect) or query string (query).  Peer ids are assigned
    in session order.
    """
    events: List[Tuple[float, int, str, str]] = []
    for peer_id, session in enumerate(sessions):
        events.append((session.start, peer_id, "connect", session.region.value))
        for query in session.queries:
            events.append((session.start + query.offset, peer_id, "query", query.keywords))
        events.append((session.end, peer_id, "disconnect", ""))
    events.sort(key=lambda e: (e[0], e[1]))
    return events


def to_npz(workload: ColumnarWorkload, path: PathLike) -> Path:
    """Persist a :class:`ColumnarWorkload` as a compressed ``.npz`` archive."""
    path = Path(path)
    columns = {name: getattr(workload, name) for name in ColumnarWorkload.ARRAY_FIELDS}
    np.savez_compressed(path, format=np.array(_NPZ_FORMAT), **columns)
    return path


def from_npz(path: PathLike) -> ColumnarWorkload:
    """Load a workload previously written by :func:`to_npz`."""
    # Compressed members cannot be memory-mapped; the eager read is the
    # deliberate choice here, stated explicitly per MEM501.
    with np.load(Path(path), allow_pickle=False, mmap_mode=None) as archive:
        tag = str(archive["format"]) if "format" in archive.files else "<missing>"
        if tag != _NPZ_FORMAT:
            raise ValueError(f"{path}: not a columnar workload archive (format={tag!r})")
        missing = [n for n in ColumnarWorkload.ARRAY_FIELDS if n not in archive.files]
        if missing:
            raise ValueError(f"{path}: missing columns {missing}")
        columns = {name: archive[name] for name in ColumnarWorkload.ARRAY_FIELDS}
    return ColumnarWorkload(**columns).validate()
