"""Host runtime introspection shared by schedulers and benchmarks.

Every component that sizes a worker pool (sharded synthesis, the
experiment fan-out) or stamps host metadata into a benchmark report must
agree on how many CPUs are *actually* usable: ``os.cpu_count()`` reports
the machine, while cgroup limits and CPU affinity masks (containers, CI
runners, ``taskset``) can leave the process with far fewer.  Disagreeing
on this is how a benchmark ends up recording "4 cores" for a host where
a 4-worker pool loses to the sequential path.
"""

from __future__ import annotations

import os

__all__ = ["available_cpus"]


def available_cpus() -> int:
    """CPUs this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1
