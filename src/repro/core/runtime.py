"""Host runtime introspection shared by schedulers and benchmarks.

Every component that sizes a worker pool (sharded synthesis, the
experiment fan-out) or stamps host metadata into a benchmark report must
agree on how many CPUs are *actually* usable: ``os.cpu_count()`` reports
the machine, while cgroup limits and CPU affinity masks (containers, CI
runners, ``taskset``) can leave the process with far fewer.  Disagreeing
on this is how a benchmark ends up recording "4 cores" for a host where
a 4-worker pool loses to the sequential path.
"""

from __future__ import annotations

import os
import sys

__all__ = ["available_cpus", "peak_rss_mb"]


def available_cpus() -> int:
    """CPUs this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def peak_rss_mb() -> float:
    """High-water resident set size of this process, in MiB.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS; normalizing
    here keeps every benchmark's ``peak_rss_mb`` field comparable across
    hosts.  Returns 0.0 where the ``resource`` module is unavailable
    (non-POSIX), so report emitters can stamp it unconditionally.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0
