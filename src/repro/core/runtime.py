"""Host runtime introspection shared by schedulers and benchmarks.

Every component that sizes a worker pool (sharded synthesis, the
experiment fan-out) or stamps host metadata into a benchmark report must
agree on how many CPUs are *actually* usable: ``os.cpu_count()`` reports
the machine, while cgroup limits and CPU affinity masks (containers, CI
runners, ``taskset``) can leave the process with far fewer.  Disagreeing
on this is how a benchmark ends up recording "4 cores" for a host where
a 4-worker pool loses to the sequential path.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Any, Dict

__all__ = ["available_cpus", "peak_rss_mb", "host_block"]


def available_cpus() -> int:
    """CPUs this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def peak_rss_mb() -> float:
    """High-water resident set size of this process, in MiB.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS; normalizing
    here keeps every benchmark's ``peak_rss_mb`` field comparable across
    hosts.  Returns 0.0 where the ``resource`` module is unavailable
    (non-POSIX), so report emitters can stamp it unconditionally.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def host_block() -> Dict[str, Any]:
    """The ``"host"`` block every benchmark report starts from.

    One emitter instead of a copy per benchmark module, so the fields a
    report archives -- and the invariants readers rely on (the kernels
    backend a run executed under, the lint ruleset it was checked
    against) -- cannot drift between reports.  ``peak_rss_mb`` is
    deliberately absent: it is only meaningful after the measured work
    ran, so emitters stamp it at the end of the run.
    """
    from repro.core.kernels import active_backend
    from repro.lint import RULESET_VERSION

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "available_cpus": available_cpus(),
        "kernels_backend": active_backend().name,
        "lint_ruleset": RULESET_VERSION,
    }
