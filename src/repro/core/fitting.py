"""Fitting the paper's model families to empirical data.

The Appendix reports fitted parameters for five workload measures; this
module provides the fitters that regenerate Tables A.1-A.5 and the Zipf
parameters of Figure 11 from a (synthesized) trace:

* :func:`fit_lognormal` -- closed-form MLE on log-transformed data.
* :func:`fit_weibull` -- MLE via profile likelihood (Newton on the shape).
* :func:`fit_pareto` -- Hill estimator for a fixed lower cutoff ``beta``.
* :func:`fit_zipf` -- least squares on the log-log rank/frequency line,
  the standard procedure for "Zipf-like" fits in the measurement
  literature.
* :func:`fit_spliced` -- splits data at a boundary and fits body and tail
  families separately, reproducing the bimodal models of Tables A.1/A.3/A.4.

Goodness of fit is reported via the Kolmogorov-Smirnov distance
(:func:`ks_distance`) and, for Zipf fits, RMSE on the log-log line.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .distributions import (
    Distribution,
    Lognormal,
    Pareto,
    Spliced,
    Weibull,
    Zipf,
)

__all__ = [
    "fit_lognormal",
    "fit_lognormal_truncated",
    "fit_lognormal_discrete",
    "fit_weibull",
    "fit_weibull_truncated",
    "fit_pareto",
    "fit_zipf",
    "ZipfFit",
    "fit_spliced",
    "SplicedFit",
    "fit_zipf_body_tail",
    "ks_distance",
]


def _clean(data: Sequence[float], minimum: float = 0.0) -> np.ndarray:
    arr = np.asarray(data, dtype=float)
    arr = arr[np.isfinite(arr) & (arr > minimum)]
    if arr.size < 2:
        raise ValueError(f"need at least 2 positive samples, got {arr.size}")
    return arr


def fit_lognormal(data: Sequence[float]) -> Lognormal:
    """Maximum-likelihood lognormal fit (mean/std of the log data)."""
    logs = np.log(_clean(data))
    sigma = float(logs.std(ddof=0))
    if sigma <= 0:
        sigma = 1e-6
    return Lognormal(mu=float(logs.mean()), sigma=sigma)


def fit_lognormal_truncated(
    data: Sequence[float], low: float = 0.0, high: float = math.inf
) -> Lognormal:
    """MLE of a lognormal observed only on the window ``(low, high]``.

    The Appendix's body/tail components are *truncated* views of full
    lognormals (e.g. Table A.1's body describes durations in (64 s,
    120 s]).  Plain MLE on such a window recovers the window, not the
    underlying distribution; this fitter maximizes the truncated
    likelihood so the recovered (mu, sigma) are directly comparable to
    the published untruncated parameters.
    """
    from scipy.optimize import minimize
    from scipy.stats import norm

    x = _clean(data)
    if low > 0:
        x = x[x > low]
    if math.isfinite(high):
        x = x[x <= high]
    if x.size < 2:
        raise ValueError("fewer than 2 samples inside the truncation window")
    logs = np.log(x)
    log_low = np.log(low) if low > 0 else -np.inf
    log_high = np.log(high) if math.isfinite(high) else np.inf

    def nll(params):
        mu, log_sigma = params
        sigma = math.exp(log_sigma)
        z = (logs - mu) / sigma
        mass = norm.cdf((log_high - mu) / sigma) - norm.cdf((log_low - mu) / sigma)
        if mass <= 1e-12:
            return 1e12
        # Lognormal density in log space: drop the constant log(x) term.
        return float(0.5 * np.sum(z**2) + logs.size * (math.log(sigma) + math.log(mass)))

    start = np.array([float(logs.mean()), math.log(max(logs.std(), 0.1))])
    best = minimize(nll, start, method="Nelder-Mead",
                    options={"xatol": 1e-6, "fatol": 1e-9, "maxiter": 2000})
    mu, log_sigma = best.x
    return Lognormal(mu=float(mu), sigma=float(math.exp(log_sigma)))


def fit_lognormal_discrete(counts: Sequence[int]) -> Lognormal:
    """Fit a lognormal to ceil-discretized counts via probit regression.

    The paper models the number of queries per session as a lognormal
    whose median lies *below one* (Table A.2: mu = -0.0673 for NA), which
    is only meaningful for the underlying continuous variable: observed
    counts are ``ceil(X)``.  Plain MLE on the integers cannot recover a
    sub-1 median.  Instead, note that ``P[count > k] = P[X > k] =
    1 - Phi((ln k - mu) / sigma)``, so regressing the probit of the
    empirical CCDF at integer anchors on ``ln k`` recovers mu and sigma
    -- which is how one fits a line through a CCDF plot, the procedure
    the Appendix figures depict.
    """
    from scipy.special import ndtri

    arr = np.asarray(counts, dtype=float)
    arr = arr[np.isfinite(arr) & (arr >= 1)]
    if arr.size < 10:
        raise ValueError(f"need at least 10 counts, got {arr.size}")
    n = arr.size
    anchors = []
    for k in range(1, int(arr.max())):
        exceed = int((arr > k).sum())
        # Keep anchors with enough mass on both sides for a stable probit.
        if 10 <= exceed <= n - 10:
            anchors.append((math.log(k), ndtri(1.0 - exceed / n)))
    if len(anchors) < 2:
        # Degenerate data (nearly all counts equal); fall back to MLE.
        return fit_lognormal(arr)
    lx = np.array([a[0] for a in anchors])
    z = np.array([a[1] for a in anchors])
    slope, intercept = np.polyfit(lx, z, 1)
    if slope <= 0:
        return fit_lognormal(arr)
    sigma = 1.0 / slope
    mu = -intercept * sigma
    return Lognormal(mu=float(mu), sigma=float(sigma))


def fit_weibull(data: Sequence[float], tol: float = 1e-9, max_iter: int = 200) -> Weibull:
    """Maximum-likelihood Weibull fit in the paper's rate parameterization.

    Solves the standard profile-likelihood equation for the shape
    ``alpha`` by Newton iteration, then sets the rate
    ``lam = n / sum(x**alpha)``.
    """
    x = _clean(data)
    logx = np.log(x)
    # Method-of-moments style starting point for the shape.
    alpha = 1.0 if logx.std() == 0 else min(50.0, 1.2 / max(logx.std(), 1e-3))
    for _ in range(max_iter):
        xa = x**alpha
        s0 = xa.sum()
        s1 = (xa * logx).sum()
        s2 = (xa * logx**2).sum()
        mean_log = logx.mean()
        f = s1 / s0 - 1.0 / alpha - mean_log
        fprime = (s2 * s0 - s1**2) / s0**2 + 1.0 / alpha**2
        step = f / fprime
        new_alpha = alpha - step
        if new_alpha <= 0:
            new_alpha = alpha / 2.0
        if abs(new_alpha - alpha) < tol:
            alpha = new_alpha
            break
        alpha = new_alpha
    lam = x.size / float((x**alpha).sum())
    return Weibull(alpha=float(alpha), lam=float(lam))


def fit_weibull_truncated(
    data: Sequence[float], low: float = 0.0, high: float = math.inf
) -> Weibull:
    """MLE of a Weibull observed only on ``(low, high]`` (cf. Table A.3 bodies)."""
    from scipy.optimize import minimize

    x = _clean(data)
    if low > 0:
        x = x[x > low]
    if math.isfinite(high):
        x = x[x <= high]
    if x.size < 2:
        raise ValueError("fewer than 2 samples inside the truncation window")
    logx = np.log(x)

    def nll(params):
        log_alpha, log_lam = params
        alpha, lam = math.exp(log_alpha), math.exp(log_lam)
        if alpha > 60 or lam > 1e6:
            return 1e12
        xa = x**alpha
        mass_high = 1.0 - math.exp(-lam * high**alpha) if math.isfinite(high) else 1.0
        mass_low = 1.0 - math.exp(-lam * low**alpha) if low > 0 else 0.0
        mass = mass_high - mass_low
        if mass <= 1e-12:
            return 1e12
        loglik = (
            x.size * (math.log(lam) + math.log(alpha))
            + (alpha - 1.0) * float(logx.sum())
            - lam * float(xa.sum())
            - x.size * math.log(mass)
        )
        return -loglik

    free = fit_weibull(x)
    start = np.array([math.log(free.alpha), math.log(free.lam)])
    best = minimize(nll, start, method="Nelder-Mead",
                    options={"xatol": 1e-7, "fatol": 1e-9, "maxiter": 2000})
    log_alpha, log_lam = best.x
    return Weibull(alpha=float(math.exp(log_alpha)), lam=float(math.exp(log_lam)))


def fit_pareto(data: Sequence[float], beta: Optional[float] = None) -> Pareto:
    """Hill-estimator Pareto fit for the tail above ``beta``.

    If ``beta`` is omitted, the sample minimum is used as the cutoff,
    matching the convention of Table A.4 where ``beta`` equals the
    body/tail boundary (103 seconds).
    """
    x = _clean(data)
    if beta is None:
        beta = float(x.min())
    tail = x[x >= beta]
    if tail.size < 2:
        raise ValueError(f"need at least 2 samples >= beta={beta}")
    alpha = tail.size / float(np.log(tail / beta).sum())
    return Pareto(alpha=float(alpha), beta=float(beta))


@dataclass(frozen=True)
class ZipfFit:
    """Result of a Zipf-like log-log regression."""

    alpha: float
    intercept: float
    rmse: float
    n_ranks: int

    def distribution(self) -> Zipf:
        return Zipf(alpha=self.alpha, n=self.n_ranks)


def fit_zipf(frequencies: Sequence[float], max_rank: int = 0) -> ZipfFit:
    """Fit ``log f(r) = intercept - alpha * log r`` by least squares.

    ``frequencies`` must be in descending rank order (rank 1 first).
    ``max_rank`` (if positive) restricts the fit to the top ranks, as the
    paper does when fitting the top-100 popularity line.
    """
    freq = np.asarray(frequencies, dtype=float)
    if max_rank > 0:
        freq = freq[:max_rank]
    freq = freq[freq > 0]
    if freq.size < 2:
        raise ValueError("need at least 2 positive frequencies")
    ranks = np.arange(1, freq.size + 1, dtype=float)
    lx, ly = np.log(ranks), np.log(freq)
    slope, intercept = np.polyfit(lx, ly, 1)
    resid = ly - (slope * lx + intercept)
    rmse = float(np.sqrt(np.mean(resid**2)))
    return ZipfFit(alpha=float(-slope), intercept=float(intercept), rmse=rmse, n_ranks=freq.size)


def fit_zipf_body_tail(
    frequencies: Sequence[float], split_rank: int
) -> Tuple[ZipfFit, ZipfFit]:
    """Fit separate Zipf lines to ranks ``1..split`` and ``split+1..n``.

    Figure 11(c) fits the intersection-class popularity with a body
    (ranks 1-45) and a much steeper tail (ranks 46-100).
    """
    freq = np.asarray(frequencies, dtype=float)
    if not 1 < split_rank < freq.size:
        raise ValueError(f"split_rank must be inside (1, {freq.size}), got {split_rank}")
    body = fit_zipf(freq[:split_rank])
    tail_freq = freq[split_rank:]
    tail_freq = tail_freq[tail_freq > 0]
    ranks = np.arange(split_rank + 1, split_rank + 1 + tail_freq.size, dtype=float)
    lx, ly = np.log(ranks), np.log(tail_freq)
    slope, intercept = np.polyfit(lx, ly, 1)
    resid = ly - (slope * lx + intercept)
    tail = ZipfFit(
        alpha=float(-slope),
        intercept=float(intercept),
        rmse=float(np.sqrt(np.mean(resid**2))),
        n_ranks=tail_freq.size,
    )
    return body, tail


@dataclass(frozen=True)
class SplicedFit:
    """Result of a body/tail spliced fit."""

    distribution: Spliced
    body_weight: float
    boundary: float
    ks: float


def fit_spliced(
    data: Sequence[float],
    boundary: float,
    body_family: str = "lognormal",
    tail_family: str = "lognormal",
    truncation_aware: bool = False,
    body_low: float = 0.0,
) -> SplicedFit:
    """Fit a body/tail spliced model with a fixed boundary.

    The body family is fit to samples in ``(body_low, boundary]`` and the
    tail family to samples ``> boundary``; the body weight is the
    empirical fraction at or below the boundary.  This mirrors how the
    Appendix reports, e.g., "Body: 1-2 minutes (75%) Lognormal / Tail:
    > 2 minutes Lognormal".

    With ``truncation_aware=True`` the lognormal/Weibull components use
    truncated-likelihood fitters, making the recovered parameters
    directly comparable to the paper's untruncated parameterization
    (Tables A.1 and A.3).  Pareto tails are inherently anchored at the
    boundary and need no correction.
    """
    x = _clean(data)
    body_data = x[(x > body_low) & (x <= boundary)]
    tail_data = x[x > boundary]
    if body_data.size < 2 or tail_data.size < 2:
        raise ValueError(
            f"boundary {boundary} leaves too few samples on one side "
            f"(body={body_data.size}, tail={tail_data.size})"
        )
    body = _fit_component(body_family, body_data, body_low, boundary, truncation_aware)
    if tail_family == "pareto":
        tail: Distribution = fit_pareto(tail_data, beta=boundary)
    else:
        tail = _fit_component(tail_family, tail_data, boundary, math.inf, truncation_aware)
    weight = float((x <= boundary).mean())
    dist = Spliced(body=body, tail=tail, boundary=boundary, body_weight=weight, body_low=body_low)
    return SplicedFit(
        distribution=dist,
        body_weight=weight,
        boundary=boundary,
        ks=ks_distance(dist, x[x > body_low]),
    )


def _fit_component(
    family: str, data: np.ndarray, low: float, high: float, truncation_aware: bool
) -> Distribution:
    if family == "lognormal":
        if truncation_aware:
            return fit_lognormal_truncated(data, low=low, high=high)
        return fit_lognormal(data)
    if family == "weibull":
        if truncation_aware:
            return fit_weibull_truncated(data, low=low, high=high)
        return fit_weibull(data)
    if family == "pareto":
        return fit_pareto(data)
    raise ValueError(f"unknown distribution family {family!r}")


def ks_distance(dist: Distribution, data: Sequence[float]) -> float:
    """Kolmogorov-Smirnov distance between ``dist`` and the empirical CDF."""
    x = np.sort(np.asarray(data, dtype=float))
    if x.size == 0:
        raise ValueError("need at least one sample")
    n = x.size
    model = np.asarray(dist.cdf(x), dtype=float)
    upper = np.arange(1, n + 1) / n
    lower = np.arange(0, n) / n
    return float(max(np.max(np.abs(model - upper)), np.max(np.abs(model - lower))))
