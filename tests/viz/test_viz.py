"""Tests for the SVG figure renderer."""

import math
import xml.etree.ElementTree as ET

import pytest

from repro.viz import (
    LinearScale,
    LinePlot,
    LogScale,
    SvgCanvas,
    decade_ticks,
    format_tick,
    nice_linear_ticks,
)


class TestSvgCanvas:
    def test_valid_xml(self):
        canvas = SvgCanvas(100, 80)
        canvas.line(0, 0, 50, 50)
        canvas.circle(10, 10, 3)
        canvas.text(5, 5, "label <&>")
        root = ET.fromstring(canvas.render())
        assert root.tag.endswith("svg")

    def test_text_escaped(self):
        canvas = SvgCanvas(50, 50)
        canvas.text(1, 1, "<script>")
        assert "<script>" not in canvas.render()
        assert "&lt;script&gt;" in canvas.render()

    def test_polyline_needs_points(self):
        canvas = SvgCanvas(50, 50)
        with pytest.raises(ValueError):
            canvas.polyline([(1, 1)])

    def test_save(self, tmp_path):
        canvas = SvgCanvas(50, 50)
        canvas.line(0, 0, 10, 10)
        path = tmp_path / "out.svg"
        canvas.save(path)
        assert path.read_text().startswith("<svg")

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 100)


class TestScales:
    def test_linear_endpoints(self):
        scale = LinearScale(0.0, 10.0, 100.0, 200.0)
        assert scale.transform(0.0) == pytest.approx(100.0)
        assert scale.transform(10.0) == pytest.approx(200.0)
        assert scale.transform(5.0) == pytest.approx(150.0)

    def test_linear_clamps_overflow(self):
        scale = LinearScale(0.0, 10.0, 0.0, 100.0)
        assert scale.transform(1000.0) <= 105.0

    def test_log_decades(self):
        scale = LogScale(1.0, 1000.0, 0.0, 300.0)
        assert scale.transform(1.0) == pytest.approx(0.0)
        assert scale.transform(10.0) == pytest.approx(100.0)
        assert scale.transform(1000.0) == pytest.approx(300.0)

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LogScale(0.0, 10.0, 0.0, 1.0)

    def test_inverted_pixel_range(self):
        # y axes map larger data to smaller pixels.
        scale = LinearScale(0.0, 1.0, 300.0, 50.0)
        assert scale.transform(1.0) == pytest.approx(50.0)


class TestTicks:
    def test_linear_125(self):
        ticks = nice_linear_ticks(0.0, 10.0)
        assert 0.0 in ticks and 10.0 in ticks
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1

    def test_decades(self):
        assert decade_ticks(1.0, 1000.0) == [1.0, 10.0, 100.0, 1000.0]
        assert decade_ticks(0.5, 50.0) == [1.0, 10.0]

    def test_format(self):
        assert format_tick(0) == "0"
        assert format_tick(10) == "10"
        assert format_tick(0.5) == "0.5"
        assert format_tick(1e-4) == "1e-04"

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            nice_linear_ticks(5.0, 5.0)
        with pytest.raises(ValueError):
            decade_ticks(-1.0, 10.0)


class TestLinePlot:
    def test_render_basic(self):
        plot = LinePlot(title="T", xlabel="x", ylabel="y")
        plot.add("a", [1, 2, 3], [1, 4, 9])
        root = ET.fromstring(plot.render())
        polylines = root.findall(".//{http://www.w3.org/2000/svg}polyline")
        assert len(polylines) >= 1

    def test_log_axes_drop_nonpositive(self):
        plot = LinePlot(title="T", xlabel="x", ylabel="y", log_x=True, log_y=True)
        plot.add("a", [0.0, 1.0, 10.0, 100.0], [0.5, 0.1, 0.0, 0.01])
        assert len(plot.series) == 1
        assert all(v > 0 for v in plot.series[0].x)
        assert all(v > 0 for v in plot.series[0].y)

    def test_sparse_series_skipped(self):
        plot = LinePlot(title="T", xlabel="x", ylabel="y", log_y=True)
        plot.add("degenerate", [1.0, 2.0], [0.0, 0.0])
        assert plot.series == []

    def test_empty_plot_rejected(self):
        with pytest.raises(ValueError):
            LinePlot(title="T", xlabel="x", ylabel="y").render()

    def test_legend_contains_labels(self):
        plot = LinePlot(title="T", xlabel="x", ylabel="y")
        plot.add("Europe", [0, 1], [1, 2])
        plot.add("Asia", [0, 1], [2, 1])
        text = plot.render()
        assert "Europe" in text and "Asia" in text

    def test_mismatched_lengths(self):
        from repro.viz.plot import Series

        with pytest.raises(ValueError):
            Series("bad", [1, 2], [1])


class TestFigures:
    def test_render_all(self, context, tmp_path):
        from repro.viz import render_all

        paths = render_all(context, tmp_path)
        assert len(paths) >= 15
        for path in paths:
            ET.parse(path)  # every file is valid XML

    def test_build_figures_names(self, context):
        from repro.viz import build_figures

        figures = build_figures(context)
        for expected in ("fig01_na", "fig02", "fig05a", "fig06a", "fig08a", "fig11_na"):
            assert expected in figures
