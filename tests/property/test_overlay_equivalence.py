"""Property tests: the batched overlay engine against the scalar reference.

Randomized topologies, origins (ultrapeer and leaf), and TTLs; with
per-link latency zeroed, the event-driven flood is a strict BFS, so the
columnar frontier expansion must reproduce its message counts, hit
counts, and reach sets exactly.  The second group drives random batch
churn through :class:`CSRTopology` and checks the graph against a
plain-dict model of the same operations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SyntheticWorkloadGenerator
from repro.gnutella.columnar_overlay import (
    compare_runs,
    flood_context_from_overlay,
    flood_queries,
    simulate_workload,
)
from repro.gnutella.overlay import OverlayNetwork
from repro.gnutella.topology import CSRTopology

CATALOG = [f"song track{i}" for i in range(25)] + [f"movie {i}" for i in range(15)]


@settings(max_examples=15, deadline=None)
@given(
    n_ultrapeers=st.integers(3, 12),
    n_leaves=st.integers(0, 25),
    degree=st.integers(1, 4),
    attachments=st.integers(1, 2),
    seed=st.integers(0, 2**16),
    ttl=st.integers(1, 5),
)
def test_flood_matches_event_reference(
    n_ultrapeers, n_leaves, degree, attachments, seed, ttl
):
    net = OverlayNetwork(
        n_ultrapeers=n_ultrapeers,
        n_leaves=n_leaves,
        ultrapeer_degree=degree,
        leaf_attachments=attachments,
        latency_ms=(0.0, 0.0),
        seed=seed,
    )
    net.seed_libraries(CATALOG, mean_files=6.0)
    rng = np.random.default_rng(seed + 1)
    queries = [CATALOG[int(rng.integers(len(CATALOG)))] for _ in range(4)]
    ctx, node_ids = flood_context_from_overlay(net, extra_vocab=queries)
    index = {n: i for i, n in enumerate(node_ids)}
    all_ids = list(net.nodes)
    for text in queries:
        origin = all_ids[int(rng.integers(len(all_ids)))]
        outcome = net.flood_query(origin, text, ttl=ttl)
        result = flood_queries(
            ctx,
            np.array([index[origin]]),
            ctx.codes_for([text]),
            ttl=ttl,
            record_reach=True,
        )
        assert int(result.messages[0]) == outcome.messages_sent
        assert int(result.hits[0]) == outcome.hits
        event_reach = {index[p] for p in outcome.peers_reached} | {index[origin]}
        assert set(result.reach_node.tolist()) == event_reach


@settings(max_examples=6, deadline=None)
@given(
    n_peers=st.integers(20, 60),
    seed=st.integers(0, 2**16),
    rounds=st.integers(4, 20),
)
def test_simulation_battery_on_random_workloads(n_peers, seed, rounds):
    # The full engine on a shared seed: hop-1 capture stream, reach
    # sets, sessions, keepalives -- every observable identical.
    run_seconds = rounds * 30.0
    workload = SyntheticWorkloadGenerator(
        n_peers=n_peers, seed=seed
    ).generate_columnar(run_seconds)
    columnar = simulate_workload(
        workload, run_seconds, backend="columnar", record_reach=True
    )
    event = simulate_workload(
        workload, run_seconds, backend="event", record_reach=True
    )
    checks = compare_runs(columnar, event)
    assert checks["ok"], checks


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_csr_churn_matches_dict_model(data):
    capacity = data.draw(st.integers(4, 30))
    topo = CSRTopology(capacity)
    model = {}  # node -> set of neighbours
    for _ in range(data.draw(st.integers(1, 8))):
        inactive = sorted(set(range(capacity)) - set(model))
        active = sorted(model)
        op = data.draw(st.sampled_from(["add", "remove", "connect", "disconnect"]))
        if op == "add" and inactive:
            batch = data.draw(
                st.lists(st.sampled_from(inactive), min_size=1, unique=True)
            )
            modes = data.draw(
                st.lists(
                    st.booleans(), min_size=len(batch), max_size=len(batch)
                )
            )
            topo.add_nodes(np.asarray(batch), np.asarray(modes))
            for node in batch:
                model[node] = set()
        elif op == "remove" and active:
            batch = data.draw(
                st.lists(st.sampled_from(active), min_size=1, unique=True)
            )
            topo.remove_nodes(np.asarray(batch))
            for node in batch:
                for other in model.pop(node):
                    model[other].discard(node)
        elif op in ("connect", "disconnect") and len(active) >= 2:
            pair_strategy = (
                st.tuples(st.sampled_from(active), st.sampled_from(active))
                .filter(lambda p: p[0] != p[1])
            )
            pairs = data.draw(st.lists(pair_strategy, min_size=1, max_size=6))
            a = np.asarray([p[0] for p in pairs])
            b = np.asarray([p[1] for p in pairs])
            if op == "connect":
                topo.connect(a, b)
                for x, y in pairs:
                    model[x].add(y)
                    model[y].add(x)
            else:
                topo.disconnect(a, b)
                for x, y in pairs:
                    model[x].discard(y)
                    model[y].discard(x)
        topo.validate()
    assert topo.n_nodes == len(model)
    assert topo.n_edges == sum(len(v) for v in model.values()) // 2
    for node, neighbours in model.items():
        assert set(topo.neighbours(node).tolist()) == neighbours
