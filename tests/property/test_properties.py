"""Property-based tests (hypothesis) on the core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.distributions import (
    Lognormal,
    Pareto,
    Spliced,
    Truncated,
    Weibull,
    Zipf,
)
from repro.core.events import QueryRecord, SessionRecord
from repro.core.regions import Region
from repro.core.stats import empirical_ccdf
from repro.filtering import apply_filters, rule2_duplicates, rule45_interarrival_marks
from repro.gnutella.messages import Query, decode, new_guid
from repro.gnutella.routing import RoutingTable

# -- distribution laws ---------------------------------------------------------

finite_mu = st.floats(min_value=-5.0, max_value=8.0, allow_nan=False)
sigma = st.floats(min_value=0.05, max_value=4.0, allow_nan=False)
probability = st.floats(min_value=0.001, max_value=0.999, allow_nan=False)


@given(mu=finite_mu, s=sigma, q=probability)
def test_lognormal_ppf_inverts_cdf(mu, s, q):
    dist = Lognormal(mu, s)
    assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-6)


@given(mu=finite_mu, s=sigma, x1=st.floats(0.01, 1e5), x2=st.floats(0.01, 1e5))
def test_lognormal_cdf_monotone(mu, s, x1, x2):
    dist = Lognormal(mu, s)
    lo, hi = min(x1, x2), max(x1, x2)
    assert dist.cdf(lo) <= dist.cdf(hi) + 1e-12


@given(alpha=st.floats(0.2, 5.0), lam=st.floats(1e-5, 1.0), q=probability)
def test_weibull_ppf_inverts_cdf(alpha, lam, q):
    dist = Weibull(alpha, lam)
    assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-6)


@given(alpha=st.floats(0.3, 5.0), beta=st.floats(0.5, 1e4), q=probability)
def test_pareto_support_and_inverse(alpha, beta, q):
    dist = Pareto(alpha, beta)
    x = dist.ppf(q)
    assert x >= beta - 1e-9
    assert dist.cdf(x) == pytest.approx(q, abs=1e-9)


@given(
    mu=st.floats(0.0, 4.0), s=st.floats(0.2, 3.0),
    low=st.floats(1.0, 50.0), width=st.floats(1.0, 200.0),
    q=probability,
)
def test_truncated_stays_in_window(mu, s, low, width, q):
    base = Lognormal(mu, s)
    assume(base.cdf(low + width) - base.cdf(low) > 1e-6)
    dist = Truncated(base, low, low + width)
    x = dist.ppf(q)
    assert low - 1e-6 <= x <= low + width + 1e-6


@given(
    weight=st.floats(0.05, 0.95),
    boundary=st.floats(10.0, 500.0),
    q=probability,
)
def test_spliced_cdf_hits_weight_at_boundary(weight, boundary, q):
    dist = Spliced(Lognormal(2.0, 2.0), Lognormal(6.0, 2.0), boundary, weight)
    assert dist.cdf(boundary) == pytest.approx(weight, abs=1e-9)
    x = dist.ppf(q)
    if q < weight:
        assert x <= boundary + 1e-6
    else:
        assert x >= boundary - 1e-6


@given(alpha=st.floats(0.0, 3.0), n=st.integers(1, 500))
def test_zipf_pmf_sums_to_one(alpha, n):
    z = Zipf(alpha, n)
    assert sum(z.pmf(r) for r in range(1, n + 1)) == pytest.approx(1.0, abs=1e-9)


@given(values=st.lists(st.floats(0.1, 1e6), min_size=1, max_size=200))
def test_empirical_ccdf_bounds_and_monotone(values):
    ccdf = empirical_ccdf(values)
    assert np.all(ccdf.fraction >= 0.0) and np.all(ccdf.fraction < 1.0)
    assert np.all(np.diff(ccdf.fraction) <= 1e-12)
    assert ccdf.at(max(values)) == 0.0
    assert ccdf.at(min(values) - 1.0) == 1.0


# -- codec ---------------------------------------------------------------------

@given(
    keywords=st.text(
        alphabet=st.characters(blacklist_characters="\x00", blacklist_categories=("Cs",)),
        max_size=80,
    ),
    ttl=st.integers(0, 255),
    hops=st.integers(0, 255),
    min_speed=st.integers(0, 65535),
)
def test_query_codec_roundtrip(keywords, ttl, hops, min_speed):
    q = Query(guid=new_guid(), ttl=ttl, hops=hops, keywords=keywords, min_speed=min_speed)
    decoded, rest = decode(q.encode())
    assert rest == b""
    assert decoded == q


# -- routing table -------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 20), st.floats(0.0, 100.0)), max_size=60))
def test_routing_table_never_exceeds_capacity(events):
    table = RoutingTable(ttl_seconds=30.0, max_entries=10)
    now = 0.0
    guids = [new_guid() for _ in range(21)]
    for idx, dt in sorted(events, key=lambda e: e[1]):
        now = max(now, dt)
        table.record(guids[idx], "peer", now)
        assert len(table) <= 10


# -- filtering invariants --------------------------------------------------------

query_times = st.lists(
    st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False),
    min_size=0, max_size=30,
).map(sorted)


@given(times=query_times)
def test_rule2_output_unique(times):
    queries = [
        QueryRecord(timestamp=t, keywords=f"kw{i % 5}") for i, t in enumerate(times)
    ]
    kept, removed = rule2_duplicates(queries)
    keys = [frozenset(k.keywords.split()) for k in kept]
    assert len(keys) == len(set(keys))
    assert len(kept) + removed == len(queries)


@given(times=query_times)
def test_rule45_eligible_subset_and_gaps(times):
    queries = [QueryRecord(timestamp=t, keywords=f"u{i}") for i, t in enumerate(times)]
    eligible, r4, r5 = rule45_interarrival_marks(queries)
    assert len(eligible) + 0 <= len(queries)
    assert r4 >= 0 and r5 >= 0
    eligible_times = [q.timestamp for q in eligible]
    assert eligible_times == sorted(eligible_times)


@settings(max_examples=30)
@given(
    spec=st.lists(
        st.tuples(
            st.floats(0.0, 5000.0),        # start
            st.floats(1.0, 5000.0),        # duration
            st.integers(0, 6),             # number of queries
        ),
        max_size=12,
    )
)
def test_filter_pipeline_accounting_always_balances(spec):
    sessions = []
    for start, duration, n_queries in spec:
        times = np.linspace(start + 0.5, start + duration - 0.1, n_queries)
        assume(all(t >= start for t in times))
        queries = tuple(
            QueryRecord(timestamp=float(t), keywords=f"k{i}") for i, t in enumerate(times)
        )
        sessions.append(
            SessionRecord(peer_ip="1.1.1.1", region=Region.EUROPE,
                          start=start, end=start + duration, queries=queries)
        )
    report = apply_filters(sessions).report
    assert (
        report.initial_queries
        - report.rule1_removed_queries
        - report.rule2_removed_queries
        - report.rule3_removed_queries
        == report.final_queries
    )
    assert (
        report.final_queries
        - report.rule4_removed_queries
        - report.rule5_removed_queries
        == report.final_interarrival_queries
    )
