"""Property: shard boundaries are invisible to the streamed results.

Satellite of the out-of-core pipeline PR.  Two generators of adversity:

* ``split_for_streaming`` with hypothesis-drawn cut positions slices a
  trace mid-session, so sessions (and the interarrival gaps inside
  them) span chunk edges; ``StreamingFilter(split_sessions=True)`` must
  reassemble them exactly.
* ``run_sharded`` with awkward (non-dividing) shard widths must stay
  byte-identical to ``run_columnar`` under the same config -- the shard
  window layout is part of the trace identity, never a perturbation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import run_streaming
from repro.filtering import apply_filters_columnar
from repro.measurement import ColumnarTrace
from repro.synthesis import SynthesisConfig, TraceSynthesizer

cut_fractions = st.lists(
    st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
    min_size=1,
    max_size=6,
)


@pytest.fixture(scope="module")
def columnar():
    # Dedicated small trace: each hypothesis example re-filters it, so
    # it must be an order of magnitude lighter than the shared one-day
    # fixture while still holding thousands of cross-cut sessions.
    config = SynthesisConfig(days=0.25, mean_arrival_rate=0.15, seed=97531)
    return TraceSynthesizer(config).run_columnar()


@pytest.fixture(scope="module")
def reference(columnar):
    return run_streaming([columnar])


@given(fractions=cut_fractions)
@settings(max_examples=15, deadline=None)
def test_sessions_and_interarrivals_survive_random_cuts(
    columnar, reference, fractions
):
    from repro.filtering.streaming import split_for_streaming

    cuts = [columnar.end_time * f for f in fractions]
    streamed = run_streaming(
        split_for_streaming(columnar, cuts), split_sessions=True
    )
    assert streamed.report.as_dict() == reference.report.as_dict()
    # ActiveSession equality is the strong form: per-session query
    # counts, first/last gap measures, AND the full interarrival tuple
    # of every session that was cut apart must come back identical.
    # Reassembled sessions surface in completion order, so compare as
    # a multiset -- every figure product is order-insensitive.
    key = lambda v: (v.start, v.duration, v.n_queries, v.interarrivals)  # noqa: E731
    assert sorted(streamed.active.views(), key=key) == sorted(
        reference.active.views(), key=key
    )
    for region, ccdf in reference.active.interarrival_ccdf().items():
        got = streamed.active.interarrival_ccdf()[region]
        assert np.array_equal(got.x, ccdf.x)
        assert np.array_equal(got.fraction, ccdf.fraction)


@given(fractions=cut_fractions)
@settings(max_examples=15, deadline=None)
def test_eligible_gap_stream_is_cut_invariant(columnar, reference, fractions):
    from repro.filtering.streaming import StreamingFilter, split_for_streaming

    cuts = [columnar.end_time * f for f in fractions]
    filt = StreamingFilter(split_sessions=True)
    gaps = []
    for chunk in split_for_streaming(columnar, cuts):
        block = filt.push(chunk)
        if block is not None:
            gaps.append(block.interarrival_times())
    tail = filt.finish()
    if tail is not None:
        gaps.append(tail.interarrival_times())
    expected = apply_filters_columnar(columnar).interarrival_times()
    # Blocks emit reassembled sessions in completion order, so the flat
    # gap stream is a permutation of the one-shot stream; the values
    # feeding the Figure 8 CCDF must match exactly as a multiset.
    got = np.concatenate(gaps)
    assert got.shape == expected.shape
    assert np.array_equal(np.sort(got), np.sort(expected))


@pytest.mark.parametrize("shard_days", [0.07, 0.13, 0.4])
def test_awkward_shard_widths_match_in_memory_run(tmp_path, shard_days):
    # 0.07 / 0.13 leave a partial final window; 0.4 is a single shard.
    import dataclasses

    config = SynthesisConfig(
        days=0.4, mean_arrival_rate=0.25, seed=31337, shard_days=shard_days
    )
    sharded = TraceSynthesizer(config).run_sharded(tmp_path / "t")
    whole = sharded.concat()
    in_memory = TraceSynthesizer(config).run_columnar()
    for field in dataclasses.fields(ColumnarTrace):
        va, vb = getattr(whole, field.name), getattr(in_memory, field.name)
        if isinstance(va, np.ndarray):
            assert va.dtype == vb.dtype and np.array_equal(va, vb), field.name
        else:
            assert va == vb, field.name
