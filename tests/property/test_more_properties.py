"""Property-based tests over the substrate layers (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.caching import LruResultCache
from repro.core.popularity import QueryClassId, QueryUniverse
from repro.core.regions import Region
from repro.gnutella.qrp import QueryRouteTable, keyword_hash
from repro.measurement import IDLE_CLOSE_SECONDS, IDLE_PROBE_SECONDS, MeasurementNode
from repro.viz.axes import LinearScale, LogScale, nice_linear_ticks

# -- QRP: never a false negative ------------------------------------------------

file_names = st.lists(
    st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=12),
    min_size=1, max_size=20,
).map(lambda words: " ".join(words))


@given(names=st.lists(file_names, min_size=1, max_size=30),
       log_size=st.integers(6, 16))
def test_qrp_no_false_negatives(names, log_size):
    table = QueryRouteTable(log_size=log_size)
    table.add_library(names)
    for name in names:
        assert table.might_match(name)


@given(word=st.text(min_size=1, max_size=30), bits=st.integers(1, 32))
def test_keyword_hash_in_range(word, bits):
    value = keyword_hash(word, bits)
    assert 0 <= value < (1 << bits)


# -- monitor accounting ----------------------------------------------------------

session_specs = st.lists(
    st.tuples(
        st.floats(0.0, 10_000.0),            # open time
        st.floats(0.1, 5_000.0),             # lifetime
        st.integers(0, 5),                   # queries
        st.booleans(),                       # bye?
    ),
    min_size=0, max_size=20,
)


@settings(max_examples=50)
@given(specs=session_specs)
def test_monitor_session_accounting(specs):
    node = MeasurementNode(max_slots=None)
    expected = 0
    for index, (opened, lifetime, n_queries, bye) in enumerate(sorted(specs)):
        conn = node.open_connection(
            opened, peer_ip=f"64.0.{index // 200}.{index % 200 + 1}",
            region=Region.EUROPE, user_agent="X",
        )
        assert conn is not None
        expected += 1
        for k in range(n_queries):
            node.receive_query(conn, opened + (k + 1) * lifetime / (n_queries + 1), f"q{k}")
        end = opened + lifetime
        if bye:
            session = node.client_bye(conn, end)
            assert session.end == pytest.approx(max(end, session.queries[-1].timestamp) if session.queries else end)
        else:
            session = node.client_departed(conn, end)
            assert session.end >= end + IDLE_PROBE_SECONDS + IDLE_CLOSE_SECONDS - 1e-9
        assert session.query_count == n_queries
    assert len(node.finalize(1e6)) == expected


# -- query universe ----------------------------------------------------------------

@settings(max_examples=20)
@given(day=st.integers(0, 6), seed=st.integers(0, 5))
def test_universe_lookup_consistent_with_ranking(day, seed):
    universe = QueryUniverse(seed=seed, scale=0.05)
    for cls in (QueryClassId.NA_ONLY, QueryClassId.AS_ONLY):
        ranking = universe.daily_ranking(day, cls)
        for rank, query in enumerate(ranking[:10], start=1):
            located = universe.lookup(day, query)
            assert located == (cls, rank)


@settings(max_examples=20)
@given(day=st.integers(0, 4))
def test_universe_daily_sets_disjoint_across_classes(day):
    universe = QueryUniverse(seed=3, scale=0.05)
    seen = set()
    for cls in QueryClassId:
        ranking = set(universe.daily_ranking(day, cls))
        assert not (ranking & seen)  # string pools are disjoint by class
        seen |= ranking


# -- LRU cache ----------------------------------------------------------------------

cache_ops = st.lists(
    st.tuples(st.integers(0, 8), st.floats(0.0, 1000.0)),
    min_size=1, max_size=60,
)


@given(ops=cache_ops, capacity=st.integers(1, 6))
def test_lru_cache_capacity_invariant(ops, capacity):
    cache = LruResultCache(capacity=capacity, ttl=1e9)
    for key, raw_time in sorted(ops, key=lambda o: o[1]):
        cache.lookup(f"k{key}", raw_time)
        assert len(cache) <= capacity
    assert cache.hits + cache.misses == len(ops)


# -- axis scales -----------------------------------------------------------------------

@given(
    lo=st.floats(-1e6, 1e6), span=st.floats(1e-3, 1e6),
    value=st.floats(-1e6, 1e6),
)
def test_linear_scale_monotone(lo, span, value):
    scale = LinearScale(lo, lo + span, 0.0, 100.0)
    v2 = value + span / 10
    assert scale.transform(value) <= scale.transform(v2) + 1e-9


@given(lo=st.floats(1e-3, 1e3), ratio=st.floats(1.5, 1e6))
def test_log_scale_decade_spacing(lo, ratio):
    scale = LogScale(lo, lo * ratio, 0.0, 100.0)
    mid = (lo * lo * ratio) ** 0.5  # geometric midpoint
    assert scale.transform(mid) == pytest.approx(50.0, abs=1.0)


@given(lo=st.floats(-1e4, 1e4), span=st.floats(0.1, 1e4))
def test_linear_ticks_inside_range(lo, span):
    ticks = nice_linear_ticks(lo, lo + span)
    assume(ticks)
    assert all(lo - 1e-6 <= t <= lo + span + 1e-6 for t in ticks)
