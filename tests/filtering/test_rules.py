"""Unit tests for filter rules 1-5."""

import pytest

from repro.core.events import QueryRecord, SessionRecord
from repro.core.regions import Region
from repro.filtering import (
    rule1_sha1,
    rule2_duplicates,
    rule3_short_sessions,
    rule45_interarrival_marks,
)


def q(t, keywords="query", sha1=False):
    return QueryRecord(timestamp=t, keywords=keywords, sha1=sha1)


def session(duration, queries=()):
    return SessionRecord(
        peer_ip="64.0.0.1", region=Region.NORTH_AMERICA,
        start=0.0, end=duration, queries=tuple(queries),
    )


class TestRule1:
    def test_drops_sha1(self):
        kept, removed = rule1_sha1([q(1, "a"), q(2, "b", sha1=True), q(3, "c")])
        assert removed == 1
        assert [x.keywords for x in kept] == ["a", "c"]

    def test_drops_empty_keywords(self):
        kept, removed = rule1_sha1([q(1, "  "), q(2, "real")])
        assert removed == 1
        assert kept[0].keywords == "real"

    def test_noop_on_clean_stream(self):
        queries = [q(1, "a"), q(2, "b")]
        kept, removed = rule1_sha1(queries)
        assert removed == 0 and kept == queries


class TestRule2:
    def test_keeps_first_occurrence(self):
        kept, removed = rule2_duplicates([q(1, "abba"), q(5, "abba"), q(9, "abba")])
        assert removed == 2
        assert len(kept) == 1
        assert kept[0].timestamp == 1

    def test_keyword_set_identity(self):
        # "queries are assumed to be identical if they contain the same
        # set of keywords" -- order and case must not matter.
        kept, removed = rule2_duplicates([q(1, "free music"), q(5, "Music FREE")])
        assert removed == 1

    def test_distinct_queries_kept(self):
        kept, removed = rule2_duplicates([q(1, "a"), q(2, "b"), q(3, "c")])
        assert removed == 0 and len(kept) == 3


class TestRule3:
    def test_cutoff_at_64_seconds(self):
        short = session(63.9, [q(10.0)])
        long = session(64.0)
        kept, n_sessions, n_queries = rule3_short_sessions([short, long])
        assert kept == [long]
        assert n_sessions == 1
        assert n_queries == 1

    def test_counts_removed_queries(self):
        short = session(30.0, [q(1.0, "a"), q(2.0, "b")])
        _, _, n_queries = rule3_short_sessions([short])
        assert n_queries == 2


class TestRules45:
    def test_burst_fully_removed(self):
        # All members of a sub-second chain are rule-4 traffic,
        # including the leader (it corrupts time-until-first otherwise).
        queries = [q(0.2, "p1"), q(0.5, "p2"), q(0.9, "p3"), q(120.0, "user")]
        eligible, r4, r5 = rule45_interarrival_marks(queries)
        assert [x.keywords for x in eligible] == ["user"]
        assert r4 == 3
        assert r5 == 0

    def test_metronome_marked_by_rule5(self):
        queries = [q(10.0, "a"), q(20.0, "b"), q(30.0, "c"), q(40.0, "d")]
        eligible, r4, r5 = rule45_interarrival_marks(queries)
        # First gap (10 s) establishes the cadence; the two repeats fall
        # to rule 5.
        assert r5 == 2
        assert r4 == 0
        assert [x.keywords for x in eligible] == ["a", "b"]

    def test_irregular_gaps_survive(self):
        queries = [q(10.0, "a"), q(25.0, "b"), q(90.0, "c")]
        eligible, r4, r5 = rule45_interarrival_marks(queries)
        assert len(eligible) == 3
        assert (r4, r5) == (0, 0)

    def test_single_query_untouched(self):
        queries = [q(42.0, "solo")]
        eligible, r4, r5 = rule45_interarrival_marks(queries)
        assert eligible == queries and (r4, r5) == (0, 0)

    def test_empty_stream(self):
        assert rule45_interarrival_marks([]) == ([], 0, 0)

    def test_mixed_burst_and_user_queries(self):
        queries = [
            q(0.3, "p1"), q(0.8, "p2"),      # burst
            q(60.0, "u1"), q(200.0, "u2"),   # genuine user queries
        ]
        eligible, r4, r5 = rule45_interarrival_marks(queries)
        assert [x.keywords for x in eligible] == ["u1", "u2"]
        assert r4 == 2
