"""Streaming rules 1-5: chunked filtering equals the one-shot pipeline.

Two adversarial inputs: shards from sharded synthesis (sessions whole,
one shard per window) and ``split_for_streaming`` chunks (sessions cut
mid-lifetime at arbitrary boundaries, ``split_sessions=True``).  Either
way the accumulated Table 2 report -- and the kept/eligible query sets
-- must be bit-identical to ``apply_filters_columnar`` on the whole
trace.
"""

import numpy as np
import pytest

from repro.filtering import apply_filters_columnar
from repro.filtering.streaming import StreamingFilter, split_for_streaming
from repro.measurement import ColumnarTrace
from repro.synthesis import SynthesisConfig, TraceSynthesizer


@pytest.fixture(scope="module")
def config():
    return SynthesisConfig(days=0.4, mean_arrival_rate=0.3, seed=9090, shard_days=0.1)


@pytest.fixture(scope="module")
def sharded(config, tmp_path_factory):
    dest = tmp_path_factory.mktemp("filter-shards") / "trace"
    return TraceSynthesizer(config).run_sharded(dest)


@pytest.fixture(scope="module")
def reference(sharded):
    return apply_filters_columnar(sharded.concat())


def drain(filt, chunks):
    blocks = [filt.push(chunk) for chunk in chunks]
    blocks.append(filt.finish())
    return [b for b in blocks if b is not None]


class TestShardedInput:
    def test_report_identical(self, sharded, reference):
        filt = StreamingFilter()
        drain(filt, sharded.iter_shards())
        assert filt.report.as_dict() == reference.report.as_dict()

    def test_blocks_cover_the_kept_queries_exactly(self, sharded, reference):
        filt = StreamingFilter()
        blocks = drain(filt, sharded.iter_shards())
        kept = np.concatenate(
            [b.trace.query_timestamp[b.query_mask] for b in blocks]
        )
        expected = reference.trace.query_timestamp[reference.query_mask]
        assert np.array_equal(kept, expected)

    def test_interarrivals_span_shard_edges(self, sharded, reference):
        # A session's eligible gaps must come out whole even when its
        # queries land in different shards' processing blocks.
        filt = StreamingFilter()
        blocks = drain(filt, sharded.iter_shards())
        gaps = np.concatenate([b.interarrival_times() for b in blocks])
        assert np.array_equal(gaps, reference.interarrival_times())


class TestSplitSessionInput:
    def test_mid_session_cuts_reproduce_the_report(self, reference):
        trace = reference.trace
        cuts = [trace.end_time * f for f in (0.21, 0.5, 0.53, 0.9)]
        filt = StreamingFilter(split_sessions=True)
        drain(filt, split_for_streaming(trace, cuts))
        assert filt.report.as_dict() == reference.report.as_dict()

    def test_empty_chunks_are_harmless(self, reference):
        trace = reference.trace
        # Duplicate cuts produce zero-width, zero-session chunks.
        cuts = [100.0, 100.0, trace.end_time - 1.0]
        filt = StreamingFilter(split_sessions=True)
        drain(filt, split_for_streaming(trace, cuts))
        assert filt.report.as_dict() == reference.report.as_dict()


def test_single_chunk_degenerates_to_one_shot(reference):
    filt = StreamingFilter()
    blocks = drain(filt, [reference.trace])
    assert filt.report.as_dict() == reference.report.as_dict()
    assert sum(int(b.session_mask.sum()) for b in blocks) == int(
        reference.session_mask.sum()
    )
