"""Vectorized filtering parity: columnar rules 1-5 vs. the record loop.

The acceptance bar for the columnar filter is exact agreement -- the
same Table 2 accounting, the same surviving sessions, the same
interarrival gaps -- on any trace, so every test here compares the two
implementations on the same input rather than pinning hand-computed
numbers.
"""

import numpy as np
import pytest

from repro.core.events import QueryRecord, SessionRecord
from repro.core.regions import Region
from repro.filtering import (
    ColumnarFilterResult,
    apply_filters,
    apply_filters_columnar,
)
from repro.measurement import ColumnarTrace, Trace


def make_rule_trace():
    """A small hand-built trace that trips every rule at least once."""
    trace = Trace(start_time=0.0, end_time=7200.0)

    def session(ip, start, end, queries):
        return SessionRecord(
            peer_ip=ip, region=Region.NORTH_AMERICA, start=start, end=end,
            queries=tuple(queries), user_agent="test", ultrapeer=False,
            shared_files=0,
        )

    q = QueryRecord
    trace.sessions.extend([
        # rule 1: sha1 query and empty-keyword query removed
        session("10.0.0.1", 0.0, 3600.0, [
            q(timestamp=10.0, keywords="abc", sha1=True),
            q(timestamp=20.0, keywords="   "),
            q(timestamp=30.0, keywords="keep me"),
        ]),
        # rule 2: re-ordered duplicate keywords removed within session
        session("10.0.0.2", 0.0, 3600.0, [
            q(timestamp=40.0, keywords="b a"),
            q(timestamp=50.0, keywords="a  B"),
            q(timestamp=60.0, keywords="unique"),
        ]),
        # rule 3: session shorter than the minimum duration dropped
        session("10.0.0.3", 0.0, 5.0, [q(timestamp=1.0, keywords="short")]),
        # rule 4: sub-second pair both marked ineligible
        session("10.0.0.4", 0.0, 3600.0, [
            q(timestamp=100.0, keywords="one"),
            q(timestamp=100.5, keywords="two"),
            q(timestamp=200.0, keywords="three"),
        ]),
        # rule 5: constant-gap run marked automated past the second gap
        session("10.0.0.5", 0.0, 3600.0, [
            q(timestamp=300.0 + 10.0 * i, keywords=f"tick {i}") for i in range(5)
        ]),
    ])
    return trace


def assert_filter_parity(trace):
    loop = apply_filters(trace.sessions)
    columnar = apply_filters_columnar(ColumnarTrace.from_trace(trace))

    assert columnar.report.as_dict() == loop.report.as_dict()
    assert columnar.interarrival_times().tolist() == loop.interarrival_times()

    materialized = columnar.to_filter_result()
    assert materialized.sessions == loop.sessions
    assert materialized.interarrival_queries == loop.interarrival_queries
    assert materialized.report == loop.report
    return loop, columnar


class TestRuleParity:
    def test_hand_built_trace(self):
        loop, columnar = assert_filter_parity(make_rule_trace())
        report = loop.report
        # Sanity: the construction actually exercised every rule.
        assert report.rule1_removed_queries == 2
        assert report.rule2_removed_queries == 1
        assert report.rule3_removed_sessions == 1
        assert report.rule4_removed_queries >= 2
        assert report.rule5_removed_queries >= 1

    def test_empty_trace(self):
        assert_filter_parity(Trace(start_time=0.0, end_time=3600.0))

    def test_synthesized_trace(self, small_trace):
        loop, _ = assert_filter_parity(small_trace)
        # Large enough that the parity is meaningful.
        assert loop.report.initial_queries > 1000


class TestColumnarMasks:
    @pytest.fixture(scope="class")
    def result(self, small_trace):
        return apply_filters_columnar(ColumnarTrace.from_trace(small_trace))

    def test_mask_shapes(self, result):
        assert result.session_mask.shape == (result.trace.n_sessions,)
        assert result.query_mask.shape == (result.trace.n_queries,)
        assert result.eligible_mask.shape == (result.trace.n_queries,)

    def test_eligible_subset_of_kept(self, result):
        assert not np.any(result.eligible_mask & ~result.query_mask)

    def test_kept_queries_live_in_kept_sessions(self, result):
        owner_kept = result.session_mask[result.session_index]
        assert not np.any(result.query_mask & ~owner_kept)

    def test_counts_match_report(self, result):
        report = result.report
        assert int(result.query_mask.sum()) == report.final_queries
        assert int(result.session_mask.sum()) == report.final_sessions
        assert int(result.eligible_mask.sum()) == report.final_interarrival_queries
        # Gaps are within-session, so each session holding k eligible
        # queries contributes k-1 of them.
        sessions_with_eligible = len(
            np.unique(result.session_index[result.eligible_mask])
        )
        gaps = result.interarrival_times()
        assert len(gaps) == report.final_interarrival_queries - sessions_with_eligible
