"""Tests for the full filter pipeline and its Table 2 accounting."""

import pytest

from repro.core.events import QueryRecord, SessionRecord
from repro.core.regions import Region
from repro.filtering import apply_filters


def q(t, keywords="query", sha1=False):
    return QueryRecord(timestamp=t, keywords=keywords, sha1=sha1)


def session(start, duration, queries=()):
    return SessionRecord(
        peer_ip="64.0.0.1", region=Region.NORTH_AMERICA,
        start=start, end=start + duration, queries=tuple(queries),
    )


@pytest.fixture
def mixed_sessions():
    return [
        # Long active session with SHA1 junk, a duplicate, and a burst.
        session(0.0, 1000.0, [
            q(0.2, "pre1"), q(0.7, "pre2"),           # rule 4 burst
            q(60.0, "alpha"), q(61.5, "alpha urn", sha1=True),
            q(200.0, "alpha"),                         # rule 2 duplicate
            q(400.0, "beta"),
        ]),
        # Quick disconnect carrying a stray query (rule 3).
        session(100.0, 30.0, [q(110.0, "stray")]),
        # Passive survivor.
        session(200.0, 500.0),
    ]


class TestAccounting:
    def test_report_counts(self, mixed_sessions):
        result = apply_filters(mixed_sessions)
        report = result.report
        assert report.initial_sessions == 3
        assert report.initial_queries == 7
        assert report.rule1_removed_queries == 1
        assert report.rule2_removed_queries == 1
        assert report.rule3_removed_sessions == 1
        assert report.rule3_removed_queries == 1
        assert report.final_sessions == 2
        assert report.final_queries == 4  # pre1 pre2 alpha beta
        assert report.rule4_removed_queries == 2
        assert report.final_interarrival_queries == 2

    def test_conservation_identity(self, mixed_sessions):
        report = apply_filters(mixed_sessions).report
        assert (
            report.initial_queries
            - report.rule1_removed_queries
            - report.rule2_removed_queries
            - report.rule3_removed_queries
            == report.final_queries
        )
        assert (
            report.final_queries
            - report.rule4_removed_queries
            - report.rule5_removed_queries
            == report.final_interarrival_queries
        )
        assert report.initial_sessions - report.rule3_removed_sessions == report.final_sessions

    def test_as_dict_keys_match_paper_rows(self, mixed_sessions):
        from repro.core.parameters import PAPER_TABLE2

        report = apply_filters(mixed_sessions).report
        assert set(report.as_dict()) == set(PAPER_TABLE2)


class TestResultViews:
    def test_sessions_filtered_in_place(self, mixed_sessions):
        result = apply_filters(mixed_sessions)
        assert len(result.sessions) == 2
        active = result.sessions[0]
        assert [x.keywords for x in active.queries] == ["pre1", "pre2", "alpha", "beta"]

    def test_interarrival_streams_aligned(self, mixed_sessions):
        result = apply_filters(mixed_sessions)
        assert len(result.interarrival_queries) == len(result.sessions)
        eligible = result.interarrival_queries[0]
        assert [x.keywords for x in eligible] == ["alpha", "beta"]

    def test_interarrival_times(self, mixed_sessions):
        result = apply_filters(mixed_sessions)
        assert result.interarrival_times() == pytest.approx([340.0])

    def test_passive_sessions_pass_through(self, mixed_sessions):
        result = apply_filters(mixed_sessions)
        assert result.sessions[1].is_passive

    def test_idempotent_on_clean_data(self, mixed_sessions):
        once = apply_filters(mixed_sessions)
        twice = apply_filters(once.sessions)
        assert twice.report.rule1_removed_queries == 0
        assert twice.report.rule2_removed_queries == 0
        assert twice.report.rule3_removed_sessions == 0
        assert twice.report.final_queries == once.report.final_queries

    def test_empty_input(self):
        result = apply_filters([])
        assert result.sessions == []
        assert result.report.initial_queries == 0


class TestSyntheticTraceProportions:
    """Shape checks against the paper's Table 2 on the shared trace."""

    def test_rule_ordering(self, filtered):
        report = filtered.report
        # Rule 2 removes the most queries, then rule 1, then rule 3.
        assert report.rule2_removed_queries > report.rule1_removed_queries
        assert report.rule1_removed_queries > report.rule3_removed_queries

    def test_quick_disconnect_fraction(self, filtered):
        report = filtered.report
        frac = report.rule3_removed_sessions / report.initial_sessions
        assert frac == pytest.approx(0.70, abs=0.05)  # "about 70%"

    def test_substantial_rule4(self, filtered):
        report = filtered.report
        assert report.rule4_removed_queries / report.final_queries > 0.2

    def test_rule5_present(self, filtered):
        assert filtered.report.rule5_removed_queries > 0
