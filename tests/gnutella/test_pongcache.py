"""Tests for pong caching."""

import numpy as np
import pytest

from repro.gnutella.messages import Ping, Pong, new_guid
from repro.gnutella.peer import PeerMode, PeerNode
from repro.gnutella.pongcache import PongCache


def pong(ip, files=5):
    return Pong(guid=new_guid(), ip=ip, shared_files=files)


class TestPongCache:
    def test_add_and_sample(self):
        cache = PongCache()
        cache.add(pong("1.1.1.1"), now=0.0)
        cache.add(pong("2.2.2.2"), now=1.0)
        sampled = cache.sample(5, now=2.0)
        assert {p.ip for p in sampled} == {"1.1.1.1", "2.2.2.2"}

    def test_newest_wins_per_address(self):
        cache = PongCache()
        cache.add(pong("1.1.1.1", files=1), now=0.0)
        cache.add(pong("1.1.1.1", files=9), now=5.0)
        assert len(cache) == 1
        assert cache.sample(1, now=6.0)[0].shared_files == 9

    def test_ttl_expiry(self):
        cache = PongCache(ttl_seconds=10.0)
        cache.add(pong("1.1.1.1"), now=0.0)
        assert cache.sample(3, now=5.0)
        assert cache.sample(3, now=20.0) == []

    def test_capacity_lru(self):
        cache = PongCache(capacity=2)
        for i in range(4):
            cache.add(pong(f"1.1.1.{i + 1}"), now=float(i))
        assert len(cache) == 2
        ips = {p.ip for p in cache.sample(2, now=5.0)}
        assert ips == {"1.1.1.3", "1.1.1.4"}

    def test_sample_subset(self):
        cache = PongCache()
        for i in range(10):
            cache.add(pong(f"2.2.2.{i + 1}"), now=0.0)
        rng = np.random.default_rng(1)
        sampled = cache.sample(3, now=1.0, rng=rng)
        assert len(sampled) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            PongCache(capacity=0)
        with pytest.raises(ValueError):
            PongCache(ttl_seconds=0.0)
        with pytest.raises(ValueError):
            PongCache().sample(-1, now=0.0)


class TestPeerPongCaching:
    def test_pongs_cached_from_traffic(self):
        node = PeerNode(node_id="up", ip="64.0.0.1", mode=PeerMode.ULTRAPEER)
        node.add_neighbour("a", PeerMode.ULTRAPEER)
        node.handle(pong("9.9.9.9").hop(), "a", now=0.0)
        assert len(node.pong_cache) == 1

    def test_ping_answered_with_cached_pongs(self):
        node = PeerNode(node_id="up", ip="64.0.0.1", mode=PeerMode.ULTRAPEER)
        node.add_neighbour("a", PeerMode.ULTRAPEER)
        node.add_neighbour("b", PeerMode.ULTRAPEER)
        # Learn two distant peers via relayed pongs.
        node.handle(pong("9.9.9.1").hop(), "a", now=0.0)
        node.handle(pong("9.9.9.2").hop(), "a", now=1.0)
        ping = Ping(guid=new_guid(), ttl=1, hops=0)
        actions = node.handle(ping, "b", now=2.0)
        ips = {message.ip for _, message in actions}
        assert "64.0.0.1" in ips          # own pong
        assert {"9.9.9.1", "9.9.9.2"} <= ips  # cached pongs relayed
        # All answers return to the asker on the ping's GUID.
        assert all(dest == "b" for dest, _ in actions)
        assert all(message.guid == ping.guid for _, message in actions)

class TestDeterministicSampling:
    """Unseeded fallback removed: sampling derives from the cache seed."""

    def fill(self, cache):
        for i in range(10):
            cache.add(pong(f"2.2.2.{i + 1}"), now=0.0)

    def test_same_seed_same_samples(self):
        a, b = PongCache(seed=7), PongCache(seed=7)
        self.fill(a)
        self.fill(b)
        for _ in range(5):
            assert [p.ip for p in a.sample(3, now=1.0)] == \
                [p.ip for p in b.sample(3, now=1.0)]

    def test_different_seeds_diverge(self):
        a, b = PongCache(seed=1), PongCache(seed=2)
        self.fill(a)
        self.fill(b)
        draws_a = [tuple(p.ip for p in a.sample(3, now=1.0)) for _ in range(5)]
        draws_b = [tuple(p.ip for p in b.sample(3, now=1.0)) for _ in range(5)]
        assert draws_a != draws_b

    def test_explicit_rng_still_wins(self):
        a, b = PongCache(seed=1), PongCache(seed=2)
        self.fill(a)
        self.fill(b)
        ips_a = [p.ip for p in a.sample(3, now=1.0, rng=np.random.default_rng(9))]
        ips_b = [p.ip for p in b.sample(3, now=1.0, rng=np.random.default_rng(9))]
        assert ips_a == ips_b
