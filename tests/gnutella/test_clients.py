"""Tests for client profiles and user-session expansion."""

import numpy as np
import pytest

from repro.gnutella.clients import (
    CLIENT_PROFILES,
    ClientProfile,
    choose_profile,
    expand_user_session,
)


def quiet_profile(**overrides):
    defaults = dict(name="quiet", user_agent="Quiet/1.0", market_share=0.5,
                    quick_disconnect_prob=0.0)
    defaults.update(overrides)
    return ClientProfile(**defaults)


class TestProfiles:
    def test_market_shares_positive(self):
        assert all(p.market_share > 0 for p in CLIENT_PROFILES)

    def test_mutella_is_leaf_only(self):
        mutella = next(p for p in CLIENT_PROFILES if p.name == "mutella")
        assert not mutella.ultrapeer_capable

    def test_choose_profile_follows_shares(self):
        rng = np.random.default_rng(0)
        names = [choose_profile(rng).name for _ in range(4000)]
        share = names.count("limewire") / len(names)
        expected = next(p for p in CLIENT_PROFILES if p.name == "limewire").market_share
        assert share == pytest.approx(expected, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            quiet_profile(market_share=1.5)
        with pytest.raises(ValueError):
            quiet_profile(requery_interval_seconds=-1.0)
        with pytest.raises(ValueError):
            quiet_profile(burst_prob=2.0)


class TestExpansion:
    def test_quiet_profile_passes_through(self):
        rng = np.random.default_rng(1)
        plan = [(10.0, "alpha"), (50.0, "beta")]
        stream = expand_user_session(plan, 300.0, quiet_profile(), rng)
        assert [(q.offset, q.keywords) for q in stream] == plan
        assert not any(q.automated for q in stream)

    def test_requery_duplicates_user_strings(self):
        rng = np.random.default_rng(2)
        profile = quiet_profile(requery_interval_seconds=60.0)
        plan = [(5.0 + 10 * i, "alpha") for i in range(6)]
        stream = expand_user_session(plan, 1000.0, profile, rng)
        dups = [q for q in stream if q.automated and q.keywords == "alpha"]
        assert dups  # rule 2 traffic present
        assert all(q.offset >= 5.0 for q in dups)

    def test_requery_count_scales_with_session_length(self):
        # Long sessions accumulate many more automated repeats -- the
        # heavy-tail amplification behind inflated unfiltered alphas.
        rng = np.random.default_rng(20)
        profile = quiet_profile(requery_interval_seconds=120.0)
        short = expand_user_session([(5.0, "a")], 600.0, profile, rng)
        long = expand_user_session([(5.0, "a")], 60_000.0, profile, rng)
        assert len(long) > 3 * len(short)

    def test_requery_capped(self):
        rng = np.random.default_rng(21)
        profile = quiet_profile(requery_interval_seconds=1.0)
        stream = expand_user_session([(1.0, "a")], 1e7, profile, rng)
        assert len([q for q in stream if q.automated]) <= 301

    def test_sha1_queries_marked(self):
        rng = np.random.default_rng(3)
        profile = quiet_profile(sha1_per_query=2.0)
        plan = [(5.0 + 10 * i, "alpha") for i in range(6)]
        stream = expand_user_session(plan, 500.0, profile, rng)
        sha1 = [q for q in stream if q.sha1]
        assert sha1
        assert all(q.automated for q in sha1)
        assert all(q.keywords != "alpha" for q in sha1)  # urn, not keywords

    def test_burst_requires_pre_connect_queries(self):
        rng = np.random.default_rng(4)
        profile = quiet_profile(burst_prob=1.0)
        no_burst = expand_user_session([(50.0, "a")], 300.0, profile, rng)
        assert all(q.offset >= 50.0 for q in no_burst)
        with_burst = expand_user_session(
            [(50.0, "a")], 300.0, profile, rng, pre_connect_queries=["p1", "p2", "p3"]
        )
        early = [q for q in with_burst if q.offset < 5.0]
        assert len(early) == 3
        gaps = np.diff(sorted(q.offset for q in early))
        assert np.all(gaps < 1.0)  # rule 4 signature

    def test_fixed_interval_cycles_search_list(self):
        rng = np.random.default_rng(5)
        profile = quiet_profile(fixed_interval_prob=1.0, fixed_interval_seconds=10.0)
        stream = expand_user_session(
            [(2.0, "a")], 500.0, profile, rng, pre_connect_queries=["p1", "p2"]
        )
        metronome = [q for q in stream if q.automated]
        assert metronome
        offsets = [q.offset for q in metronome]
        gaps = np.diff(sorted(offsets))
        assert np.allclose(gaps, 10.0)  # rule 5 signature
        # Distinct strings rotate through the search list.
        assert len({q.keywords for q in metronome[:2]}) == 2

    def test_fixed_interval_capped(self):
        rng = np.random.default_rng(6)
        profile = quiet_profile(fixed_interval_prob=1.0, fixed_interval_seconds=1.5)
        stream = expand_user_session([(1.0, "a")], 1e6, profile, rng)
        metronome = [q for q in stream if q.automated]
        assert len(metronome) <= 25  # bounded even in month-long sessions

    def test_stream_sorted_and_bounded(self):
        rng = np.random.default_rng(7)
        profile = next(p for p in CLIENT_PROFILES if p.name == "limewire")
        stream = expand_user_session(
            [(10.0, "a"), (90.0, "b")], 200.0, profile, rng,
            pre_connect_queries=["p1"],
        )
        offsets = [q.offset for q in stream]
        assert offsets == sorted(offsets)
        assert all(0 <= o <= 200.0 for o in offsets)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            expand_user_session([], 0.0, quiet_profile(), np.random.default_rng(0))

    def test_passive_session_expands_empty(self):
        rng = np.random.default_rng(8)
        assert expand_user_session([], 100.0, quiet_profile(), rng) == []
