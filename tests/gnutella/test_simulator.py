"""Tests for the discrete-event scheduler."""

import pytest

from repro.gnutella.simulator import EventScheduler


class TestScheduling:
    def test_events_run_in_time_order(self):
        sched = EventScheduler()
        order = []
        sched.schedule(5.0, lambda: order.append("b"))
        sched.schedule(1.0, lambda: order.append("a"))
        sched.schedule(9.0, lambda: order.append("c"))
        sched.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sched = EventScheduler()
        order = []
        for tag in ("first", "second", "third"):
            sched.schedule(3.0, lambda tag=tag: order.append(tag))
        sched.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(4.5, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [4.5]

    def test_schedule_after(self):
        sched = EventScheduler(start_time=10.0)
        seen = []
        sched.schedule_after(2.5, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [12.5]

    def test_cannot_schedule_in_past(self):
        sched = EventScheduler(start_time=100.0)
        with pytest.raises(ValueError):
            sched.schedule(50.0, lambda: None)
        with pytest.raises(ValueError):
            sched.schedule_after(-1.0, lambda: None)

    def test_callbacks_can_schedule_more(self):
        sched = EventScheduler()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                sched.schedule_after(1.0, lambda: chain(n + 1))

        sched.schedule(0.0, lambda: chain(0))
        sched.run()
        assert seen == [0, 1, 2, 3]


class TestCancel:
    def test_cancelled_event_skipped(self):
        sched = EventScheduler()
        seen = []
        keep = sched.schedule(1.0, lambda: seen.append("keep"))
        drop = sched.schedule(2.0, lambda: seen.append("drop"))
        sched.cancel(drop)
        sched.run()
        assert seen == ["keep"]
        assert keep is not None


class TestRunUntil:
    def test_stops_at_deadline(self):
        sched = EventScheduler()
        seen = []
        for t in (1.0, 2.0, 3.0, 4.0):
            sched.schedule(t, lambda t=t: seen.append(t))
        ran = sched.run_until(2.5)
        assert ran == 2
        assert seen == [1.0, 2.0]
        assert len(sched) == 2  # later events still queued

    def test_max_events_cap(self):
        sched = EventScheduler()
        for t in range(10):
            sched.schedule(float(t), lambda: None)
        assert sched.run_until(100.0, max_events=4) == 4

    def test_run_bounded(self):
        sched = EventScheduler()

        def reschedule():
            sched.schedule_after(1.0, reschedule)

        sched.schedule(0.0, reschedule)
        assert sched.run(max_events=50) == 50  # runaway loop bounded
