"""Tests for the overlay network simulator."""

import numpy as np
import pytest

from repro.core.regions import Region
from repro.gnutella.overlay import OverlayNetwork
from repro.gnutella.peer import PeerMode


@pytest.fixture(scope="module")
def net():
    net = OverlayNetwork(n_ultrapeers=40, n_leaves=120, seed=21)
    catalog = [f"file {i}" for i in range(300)]
    net.seed_libraries(catalog, mean_files=12)
    return net


class TestTopology:
    def test_population_counts(self, net):
        modes = [n.mode for n in net.nodes.values()]
        assert modes.count(PeerMode.ULTRAPEER) == 40
        assert modes.count(PeerMode.LEAF) == 120

    def test_leaf_degree(self, net):
        degrees = net.degree_distribution()["leaf"]
        assert all(d == 2 for d in degrees)

    def test_ultrapeer_connected_mesh(self, net):
        degrees = net.degree_distribution()["ultrapeer"]
        assert min(degrees) >= 1

    def test_connections_bidirectional(self, net):
        for node_id, node in net.nodes.items():
            for neighbour in node.neighbours:
                assert node_id in net.nodes[neighbour].neighbours

    def test_no_geographic_bias(self):
        # Section 3.1: overlay construction has no geographic bias, so a
        # node's one-hop mix should track the global mix.
        weights = {Region.NORTH_AMERICA: 0.6, Region.EUROPE: 0.2,
                   Region.ASIA: 0.13, Region.OTHER: 0.07}
        net = OverlayNetwork(n_ultrapeers=60, n_leaves=0, ultrapeer_degree=20,
                             region_weights=weights, seed=5)
        mixes = [net.one_hop_region_mix(i) for i in net.nodes]
        avg_na = np.mean([m.get(Region.NORTH_AMERICA, 0.0) for m in mixes])
        assert avg_na == pytest.approx(0.6, abs=0.08)

    def test_disconnect(self, net):
        a = next(iter(net.nodes))
        b = next(iter(net.nodes[a].neighbours))
        net.disconnect(a, b)
        assert b not in net.nodes[a].neighbours
        assert a not in net.nodes[b].neighbours
        net.connect(a, b)  # restore for other tests

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            OverlayNetwork(n_ultrapeers=1)
        with pytest.raises(ValueError):
            OverlayNetwork(ultrapeer_degree=0)


class TestFlooding:
    def test_flood_reaches_peers_and_returns_hits(self, net):
        origin = next(i for i, n in net.nodes.items() if n.is_ultrapeer)
        target = next(iter(net.nodes[origin].library), None) or "file 7"
        # Ensure at least one other peer shares the string.
        some_other = [i for i in net.nodes if i != origin][0]
        net.nodes[some_other].library.add(target)
        outcome = net.flood_query(origin, target, ttl=7)
        assert outcome.messages_sent > 0
        assert outcome.reach > 0
        assert outcome.hits >= 1

    def test_ttl_limits_reach(self):
        net = OverlayNetwork(n_ultrapeers=40, n_leaves=0, ultrapeer_degree=3, seed=8)
        origin = next(iter(net.nodes))
        near = net.flood_query(origin, "nothing shared", ttl=1)
        far = net.flood_query(origin, "nothing shared either", ttl=6)
        assert near.reach <= far.reach
        # TTL 1: the query stops at the direct neighbours.
        assert near.reach <= len(net.nodes[origin].neighbours)

    def test_no_hit_without_sharers(self, net):
        origin = next(i for i, n in net.nodes.items() if n.is_ultrapeer)
        outcome = net.flood_query(origin, "definitely not in any library", ttl=7)
        assert outcome.hits == 0

    def test_hit_latency_recorded(self, net):
        origin = next(i for i, n in net.nodes.items() if n.is_ultrapeer)
        other = [i for i in net.nodes if i != origin][5]
        net.nodes[other].library.add("latency probe")
        outcome = net.flood_query(origin, "latency probe", ttl=7)
        if outcome.hits:
            assert all(lat > 0 for lat in outcome.hit_latency)


class TestLibraries:
    def test_seed_libraries_poisson(self, net):
        sizes = [len(n.library) for n in net.nodes.values()]
        assert np.mean(sizes) == pytest.approx(12, abs=2.5)

    def test_empty_catalog_rejected(self, net):
        with pytest.raises(ValueError):
            net.seed_libraries([])
