"""Tests for peer forwarding rules (Section 3.1 semantics)."""

import pytest

from repro.gnutella.messages import Ping, Pong, Query, QueryHit, new_guid
from repro.gnutella.peer import PeerMode, PeerNode


def make_ultrapeer(node_id="up0", neighbours=()):
    node = PeerNode(node_id=node_id, ip="64.0.0.1", mode=PeerMode.ULTRAPEER)
    for n, mode in neighbours:
        node.add_neighbour(n, mode)
    return node


class TestConnections:
    def test_add_and_remove(self):
        node = make_ultrapeer()
        node.add_neighbour("a", PeerMode.LEAF)
        assert "a" in node.neighbours
        node.remove_neighbour("a")
        assert "a" not in node.neighbours

    def test_no_self_connection(self):
        node = make_ultrapeer()
        with pytest.raises(ValueError):
            node.add_neighbour("up0", PeerMode.ULTRAPEER)

    def test_capacity_enforced(self):
        node = PeerNode(node_id="x", ip="1.1.1.1", max_connections=1)
        node.add_neighbour("a", PeerMode.ULTRAPEER)
        with pytest.raises(ValueError):
            node.add_neighbour("b", PeerMode.ULTRAPEER)


class TestOriginateQuery:
    def test_sent_to_all_neighbours_with_hops_one(self):
        node = make_ultrapeer(neighbours=[("a", PeerMode.ULTRAPEER), ("b", PeerMode.LEAF)])
        query, actions = node.originate_query("free music", now=0.0)
        assert query.hops == 0
        assert len(actions) == 2
        for _, sent in actions:
            assert sent.hops == 1  # one-hop observation property
            assert sent.ttl == query.ttl - 1


class TestQueryForwarding:
    def test_ultrapeer_forwards_to_ultrapeers_not_leaves(self):
        node = make_ultrapeer(neighbours=[
            ("origin", PeerMode.ULTRAPEER),
            ("up1", PeerMode.ULTRAPEER),
            ("leaf1", PeerMode.LEAF),
        ])
        q = Query(guid=new_guid(), ttl=5, hops=1, keywords="xyz")
        actions = node.handle(q, "origin", now=0.0)
        targets = [dest for dest, _ in actions]
        assert "up1" in targets
        assert "leaf1" not in targets  # no QRP hint -> leaf spared
        assert "origin" not in targets

    def test_duplicate_guid_dropped(self):
        node = make_ultrapeer(neighbours=[("a", PeerMode.ULTRAPEER), ("b", PeerMode.ULTRAPEER)])
        q = Query(guid=new_guid(), ttl=5, hops=1, keywords="xyz")
        assert node.handle(q, "a", now=0.0)
        assert node.handle(q, "b", now=1.0) == []
        assert node.stats["queries_dropped_dup"] == 1

    def test_ttl_exhaustion_stops_forwarding(self):
        node = make_ultrapeer(neighbours=[("a", PeerMode.ULTRAPEER), ("b", PeerMode.ULTRAPEER)])
        q = Query(guid=new_guid(), ttl=0, hops=7, keywords="xyz")
        assert node.handle(q, "a", now=0.0) == []

    def test_leaf_never_forwards(self):
        leaf = PeerNode(node_id="l0", ip="2.2.2.2", mode=PeerMode.LEAF)
        leaf.add_neighbour("up", PeerMode.ULTRAPEER)
        leaf.add_neighbour("up2", PeerMode.ULTRAPEER)
        q = Query(guid=new_guid(), ttl=5, hops=1, keywords="xyz")
        assert leaf.handle(q, "up", now=0.0) == []

    def test_library_match_generates_hit(self):
        node = make_ultrapeer(neighbours=[("origin", PeerMode.ULTRAPEER)])
        node.library = {"free music"}
        q = Query(guid=new_guid(), ttl=3, hops=2, keywords="Free Music")
        actions = node.handle(q, "origin", now=0.0)
        hits = [m for _, m in actions if isinstance(m, QueryHit)]
        assert len(hits) == 1
        assert hits[0].guid == q.guid  # hit answers on the query GUID
        assert actions[0][0] == "origin"  # reverse path first hop

    def test_sha1_queries_not_answered_from_library(self):
        node = make_ultrapeer(neighbours=[("origin", PeerMode.ULTRAPEER)])
        node.library = {"abc"}
        q = Query(guid=new_guid(), ttl=3, hops=1, keywords="abc", sha1_urn="f" * 40)
        actions = node.handle(q, "origin", now=0.0)
        assert not any(isinstance(m, QueryHit) for _, m in actions)

    def test_qrp_hint_routes_to_promising_leaf(self):
        node = make_ultrapeer(neighbours=[
            ("origin", PeerMode.ULTRAPEER), ("leaf1", PeerMode.LEAF),
        ])
        node.leaf_hint = lambda neighbour, query: neighbour == "leaf1"
        q = Query(guid=new_guid(), ttl=5, hops=1, keywords="xyz")
        targets = [dest for dest, _ in node.handle(q, "origin", now=0.0)]
        assert "leaf1" in targets


class TestQueryHitRouting:
    def test_reverse_path(self):
        node = make_ultrapeer(neighbours=[("a", PeerMode.ULTRAPEER), ("b", PeerMode.ULTRAPEER)])
        q = Query(guid=new_guid(), ttl=5, hops=1, keywords="xyz")
        node.handle(q, "a", now=0.0)
        hit = QueryHit(guid=q.guid, ttl=3, hops=1, ip="9.9.9.9")
        actions = node.handle(hit, "b", now=1.0)
        assert actions == [("a", hit.hop())]

    def test_expired_route_drops_hit(self):
        node = make_ultrapeer(neighbours=[("a", PeerMode.ULTRAPEER), ("b", PeerMode.ULTRAPEER)])
        q = Query(guid=new_guid(), ttl=5, hops=1, keywords="xyz")
        node.handle(q, "a", now=0.0)
        hit = QueryHit(guid=q.guid, ttl=3, hops=1, ip="9.9.9.9")
        assert node.handle(hit, "b", now=700.0) == []  # 10-minute GUID expiry

    def test_own_query_hit_consumed(self):
        node = make_ultrapeer(neighbours=[("a", PeerMode.ULTRAPEER)])
        query, _ = node.originate_query("mine", now=0.0)
        hit = QueryHit(guid=query.guid, ttl=3, hops=2, ip="9.9.9.9")
        assert node.handle(hit, "a", now=1.0) == []
        assert node.stats["hits_received"] == 1


class TestPingPong:
    def test_ping_answered_with_pong(self):
        node = make_ultrapeer(neighbours=[("a", PeerMode.ULTRAPEER)])
        node.library = {"x", "y", "z"}
        ping = Ping(guid=new_guid(), ttl=1, hops=0)
        actions = node.handle(ping, "a", now=0.0)
        assert len(actions) == 1
        dest, pong = actions[0]
        assert dest == "a"
        assert isinstance(pong, Pong)
        assert pong.shared_files == 3
        assert pong.guid == ping.guid

    def test_pong_consumed_silently(self):
        node = make_ultrapeer(neighbours=[("a", PeerMode.ULTRAPEER)])
        pong = Pong(guid=new_guid(), ip="3.3.3.3")
        assert node.handle(pong, "a", now=0.0) == []

    def test_message_from_stranger_ignored(self):
        node = make_ultrapeer()
        q = Query(guid=new_guid(), ttl=5, hops=1, keywords="x")
        assert node.handle(q, "stranger", now=0.0) == []

class TestDeterministicGuids:
    """GUID streams derive from the node id (or an injected rng)."""

    def test_same_node_id_same_guid_stream(self):
        a = PeerNode(node_id="up00001", ip="1.1.1.1")
        b = PeerNode(node_id="up00001", ip="1.1.1.1")
        a.add_neighbour("n1", PeerMode.ULTRAPEER)
        b.add_neighbour("n1", PeerMode.ULTRAPEER)
        qa, _ = a.originate_query("alpha beta", now=0.0)
        qb, _ = b.originate_query("alpha beta", now=0.0)
        assert qa.guid == qb.guid
        assert a.make_ping().guid == b.make_ping().guid

    def test_different_node_ids_different_streams(self):
        a = PeerNode(node_id="up00001", ip="1.1.1.1")
        b = PeerNode(node_id="up00002", ip="1.1.1.2")
        assert a.make_ping().guid != b.make_ping().guid

    def test_injected_rng_overrides_node_seed(self):
        import numpy as np

        a = PeerNode(node_id="x", ip="1.1.1.1", rng=np.random.default_rng(5))
        b = PeerNode(node_id="y", ip="1.1.1.2", rng=np.random.default_rng(5))
        assert a.make_ping().guid == b.make_ping().guid
