"""Tests for the Gnutella 0.6 handshake."""

import pytest

from repro.gnutella.handshake import (
    HandshakeError,
    HandshakeOffer,
    HandshakeResponse,
    negotiate,
    parse_headers,
)


class TestRendering:
    def test_offer_contains_user_agent(self):
        offer = HandshakeOffer(user_agent="LimeWire/3.8.10", ultrapeer=True)
        text = offer.render()
        assert text.startswith("GNUTELLA CONNECT/0.6\r\n")
        assert "User-Agent: LimeWire/3.8.10" in text
        assert "X-Ultrapeer: True" in text
        assert text.endswith("\r\n\r\n")

    def test_response_status_lines(self):
        ok = HandshakeResponse(True, "Mutella-0.4.5")
        rejected = HandshakeResponse(False, "Mutella-0.4.5")
        assert ok.render().startswith("GNUTELLA/0.6 200 OK")
        assert rejected.render().startswith("GNUTELLA/0.6 503")

    def test_extra_headers_rendered(self):
        offer = HandshakeOffer("X", headers={"X-Query-Routing": "0.1"})
        assert "X-Query-Routing: 0.1" in offer.render()


class TestParseHeaders:
    def test_parses_status_and_headers(self):
        status, headers = parse_headers("GNUTELLA CONNECT/0.6\r\nUser-Agent: Foo\r\n\r\n")
        assert status == "GNUTELLA CONNECT/0.6"
        assert headers == {"User-Agent": "Foo"}

    def test_header_names_case_insensitive(self):
        _, headers = parse_headers("GNUTELLA CONNECT/0.6\r\nuser-agent: Bar\r\n\r\n")
        assert headers["User-Agent"] == "Bar"

    def test_malformed_header_rejected(self):
        with pytest.raises(HandshakeError):
            parse_headers("GNUTELLA CONNECT/0.6\r\nnot a header line\r\n\r\n")

    def test_empty_rejected(self):
        with pytest.raises(HandshakeError):
            parse_headers("")


class TestNegotiate:
    def offer_text(self, agent="BearShare 4.6.2", ultrapeer=False):
        return HandshakeOffer(user_agent=agent, ultrapeer=ultrapeer).render()

    def test_accepts_and_captures_user_agent(self):
        # Section 3.3 depends on recording the User-Agent at handshake.
        response, offer = negotiate(self.offer_text("Shareaza 2.0.0.0"), "measure")
        assert response.accepted
        assert offer.user_agent == "Shareaza 2.0.0.0"

    def test_rejects_when_full(self):
        response, offer = negotiate(self.offer_text(), "measure", slots_available=False)
        assert not response.accepted
        assert offer is not None  # still parsed, just refused

    def test_rejects_leaves_when_configured(self):
        response, _ = negotiate(
            self.offer_text(ultrapeer=False), "measure", accept_leaves=False
        )
        assert not response.accepted
        response, _ = negotiate(
            self.offer_text(ultrapeer=True), "measure", accept_leaves=False
        )
        assert response.accepted

    def test_rejects_garbage(self):
        response, offer = negotiate("HTTP/1.1 GET /\r\n\r\n", "measure")
        assert not response.accepted
        assert offer is None

    def test_ultrapeer_flag_parsed(self):
        _, offer = negotiate(self.offer_text(ultrapeer=True), "measure")
        assert offer.ultrapeer
