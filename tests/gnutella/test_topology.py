"""Tests for the CSR array topology behind the columnar overlay engine."""

import numpy as np
import pytest

from repro.gnutella.overlay import OverlayNetwork
from repro.gnutella.topology import CSRTopology


def small_topo(capacity=10):
    topo = CSRTopology(capacity)
    topo.add_nodes(np.arange(6), np.array([True, True, True, False, False, False]))
    topo.connect(np.array([0, 1, 2, 0, 1]), np.array([1, 2, 0, 3, 4]))
    return topo


class TestLifecycle:
    def test_counts(self):
        topo = small_topo()
        assert topo.n_nodes == 6
        assert topo.n_edges == 5
        topo.validate()

    def test_neighbours_sorted(self):
        topo = small_topo()
        assert topo.neighbours(0).tolist() == [1, 2, 3]
        assert topo.neighbours(4).tolist() == [1]

    def test_degrees(self):
        topo = small_topo()
        assert topo.degrees()[:6].tolist() == [3, 3, 2, 1, 1, 0]

    def test_double_activation_rejected(self):
        topo = small_topo()
        with pytest.raises(ValueError, match="already active"):
            topo.add_nodes(np.array([0]), np.array([True]))

    def test_remove_detaches(self):
        topo = small_topo()
        topo.remove_nodes(np.array([1]))
        assert not topo.active[1]
        assert topo.n_edges == 2
        assert 1 not in topo.neighbours(0).tolist()
        topo.validate()

    def test_connect_idempotent(self):
        topo = small_topo()
        before = topo.n_edges
        topo.connect(np.array([0, 1]), np.array([1, 0]))
        assert topo.n_edges == before

    def test_disconnect_ignores_absent(self):
        topo = small_topo()
        topo.disconnect(np.array([3]), np.array([4]))
        assert topo.n_edges == 5

    def test_self_loop_rejected(self):
        topo = small_topo()
        with pytest.raises(ValueError, match="itself"):
            topo.connect(np.array([2]), np.array([2]))

    def test_inactive_endpoint_rejected(self):
        topo = small_topo()
        with pytest.raises(ValueError, match="inactive"):
            topo.connect(np.array([0]), np.array([7]))

    def test_out_of_range_rejected(self):
        topo = small_topo()
        with pytest.raises(IndexError):
            topo.connect(np.array([0]), np.array([10]))

    def test_has_edges(self):
        topo = small_topo()
        got = topo.has_edges(np.array([0, 3, 0]), np.array([1, 4, 5]))
        assert got.tolist() == [True, False, False]

    def test_churn_round_trip(self):
        # A join/connect/disconnect/leave cycle restores the edge set.
        topo = small_topo(capacity=12)
        before = topo.edge_keys.copy()
        topo.add_nodes(np.array([8, 9]), np.array([True, False]))
        topo.connect(np.array([8, 8, 9]), np.array([0, 9, 1]))
        assert topo.n_edges == 8
        topo.validate()
        topo.remove_nodes(np.array([8, 9]))
        assert np.array_equal(topo.edge_keys, before)
        topo.validate()


class TestFromOverlay:
    def test_parity_with_object_graph(self):
        net = OverlayNetwork(n_ultrapeers=8, n_leaves=20, seed=5)
        topo, node_ids = CSRTopology.from_overlay(net)
        index = {n: i for i, n in enumerate(node_ids)}
        assert topo.n_nodes == len(net.nodes)
        for node_id, node in net.nodes.items():
            i = index[node_id]
            assert topo.is_ultrapeer[i] == node.is_ultrapeer
            got = set(topo.neighbours(i).tolist())
            want = {index[nb] for nb in node.neighbours}
            assert got == want

    def test_capacity_reserves_churn_slots(self):
        net = OverlayNetwork(n_ultrapeers=4, n_leaves=6, seed=5)
        topo, node_ids = CSRTopology.from_overlay(net, capacity=50)
        assert topo.capacity == 50
        assert topo.n_nodes == len(node_ids)
        assert not topo.active[len(node_ids):].any()

    def test_capacity_too_small_rejected(self):
        net = OverlayNetwork(n_ultrapeers=4, n_leaves=6, seed=5)
        with pytest.raises(ValueError, match="capacity"):
            CSRTopology.from_overlay(net, capacity=3)
