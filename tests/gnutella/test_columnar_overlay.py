"""Tests for the delta-stepped batched overlay engine.

The heart of this file is the backend-equivalence battery: one Fig. 12
workload replayed through the columnar array engine and through the
scalar ``PeerNode``/``EventScheduler`` reference, with every observable
compared -- per-query message counts, hits, reach sets with depths, the
monitor's hop-1 capture stream, the reconstructed sessions, and the
keepalive totals.  The property suite in
``tests/property/test_overlay_equivalence.py`` extends the same claim
to randomized topologies and floods.
"""

import numpy as np
import pytest

from repro.core import SyntheticWorkloadGenerator
from repro.gnutella.columnar_overlay import (
    ENGINE_BACKENDS,
    OverlayConfig,
    compare_runs,
    flood_context_from_overlay,
    flood_queries,
    simulate_workload,
)
from repro.gnutella.overlay import OverlayNetwork

RUN_SECONDS = 900.0


@pytest.fixture(scope="module")
def workload():
    return SyntheticWorkloadGenerator(n_peers=80, seed=7).generate_columnar(
        RUN_SECONDS
    )


@pytest.fixture(scope="module")
def both_runs(workload):
    columnar = simulate_workload(
        workload, RUN_SECONDS, backend="columnar", record_reach=True
    )
    event = simulate_workload(
        workload, RUN_SECONDS, backend="event", record_reach=True
    )
    return columnar, event


class TestBackendEquivalence:
    def test_battery_all_identical(self, both_runs):
        columnar, event = both_runs
        checks = compare_runs(columnar, event)
        assert checks["ok"], checks

    def test_reach_sets_compared(self, both_runs):
        # record_reach=True must make the battery cover per-node depths.
        columnar, event = both_runs
        checks = compare_runs(columnar, event)
        assert "reach_sets" in checks
        assert columnar.reach_node is not None

    def test_population_and_churn(self, both_runs):
        columnar, _ = both_runs
        assert columnar.peers_simulated > 100
        # Churn actually happened: some sessions departed inside the run.
        departed = columnar.session_end_observed < RUN_SECONDS
        assert departed.any() and not departed.all()

    def test_monitor_captures_every_query(self, both_runs):
        columnar, _ = both_runs
        assert columnar.hop1_session.size == columnar.n_queries
        assert (np.diff(columnar.hop1_session) >= 0).all()

    def test_jobs_byte_identity(self, workload, both_runs):
        columnar, _ = both_runs
        sharded = simulate_workload(
            workload, RUN_SECONDS, backend="columnar", jobs=3, record_reach=True
        )
        assert compare_runs(columnar, sharded)["ok"]

    def test_message_accounting(self, both_runs):
        columnar, _ = both_runs
        # The total is exactly the per-query sum (flood copies plus the
        # QUERYHIT reverse-routing legs, folded per query).
        assert columnar.messages_total == int(columnar.query_messages.sum())
        assert columnar.keepalive_pings > 0
        assert columnar.keepalive_pongs > 0


class TestValidation:
    def test_backends_registry(self):
        assert ENGINE_BACKENDS == ("columnar", "event")

    def test_unknown_backend_rejected(self, workload):
        with pytest.raises(ValueError, match="backend"):
            simulate_workload(workload, RUN_SECONDS, backend="gpu")

    def test_bad_run_seconds_rejected(self, workload):
        with pytest.raises(ValueError, match="run_seconds"):
            simulate_workload(workload, 0.0)

    def test_bad_ttl_rejected(self, workload):
        config = OverlayConfig(ttl=0)
        with pytest.raises(ValueError, match="ttl"):
            simulate_workload(workload, RUN_SECONDS, config=config)


class TestFloodKernel:
    @pytest.fixture(scope="class")
    def context(self):
        net = OverlayNetwork(
            n_ultrapeers=10, n_leaves=30, latency_ms=(0.0, 0.0), seed=3
        )
        net.seed_libraries([f"file {i}" for i in range(40)], mean_files=5.0)
        ctx, node_ids = flood_context_from_overlay(net, extra_vocab=["file 1"])
        return net, ctx, node_ids

    def test_matches_scalar_flood(self, context):
        net, ctx, node_ids = context
        index = {n: i for i, n in enumerate(node_ids)}
        origin = node_ids[0]
        outcome = net.flood_query(origin, "file 1", ttl=3)
        result = flood_queries(
            ctx,
            np.array([index[origin]]),
            ctx.codes_for(["file 1"]),
            ttl=3,
            record_reach=True,
        )
        assert int(result.messages[0]) == outcome.messages_sent
        assert int(result.hits[0]) == outcome.hits
        want = {index[p] for p in outcome.peers_reached} | {index[origin]}
        assert set(result.reach_node.tolist()) == want

    def test_unknown_vocab_rejected(self, context):
        _, ctx, _ = context
        with pytest.raises(ValueError):
            ctx.codes_for(["definitely not in the vocab"])

    def test_bad_ttl_rejected(self, context):
        _, ctx, node_ids = context
        with pytest.raises(ValueError, match="ttl"):
            flood_queries(ctx, np.array([0]), ctx.codes_for(["file 1"]), ttl=0)
