"""Tests for the GUID routing table."""

import pytest

from repro.gnutella.messages import new_guid
from repro.gnutella.routing import DEFAULT_GUID_TTL_SECONDS, RoutingTable


class TestRecord:
    def test_first_record_is_new(self):
        table = RoutingTable()
        assert table.record(new_guid(), "peer-a", now=0.0)

    def test_duplicate_detected(self):
        table = RoutingTable()
        guid = new_guid()
        assert table.record(guid, "peer-a", now=0.0)
        assert not table.record(guid, "peer-b", now=1.0)

    def test_duplicate_does_not_steal_route(self):
        # The first arrival owns the reverse path.
        table = RoutingTable()
        guid = new_guid()
        table.record(guid, "peer-a", now=0.0)
        table.record(guid, "peer-b", now=1.0)
        assert table.reverse_route(guid) == "peer-a"


class TestReverseRoute:
    def test_known_guid(self):
        table = RoutingTable()
        guid = new_guid()
        table.record(guid, "up3", now=5.0)
        assert table.reverse_route(guid, now=6.0) == "up3"

    def test_unknown_guid(self):
        assert RoutingTable().reverse_route(new_guid()) is None


class TestExpiry:
    def test_default_ttl_is_ten_minutes(self):
        assert DEFAULT_GUID_TTL_SECONDS == 600.0

    def test_entries_expire(self):
        table = RoutingTable(ttl_seconds=10.0)
        guid = new_guid()
        table.record(guid, "a", now=0.0)
        assert table.seen(guid, now=9.9)
        assert not table.seen(guid, now=10.0)

    def test_expired_guid_can_be_rerecorded(self):
        table = RoutingTable(ttl_seconds=10.0)
        guid = new_guid()
        table.record(guid, "a", now=0.0)
        assert table.record(guid, "b", now=20.0)
        assert table.reverse_route(guid) == "b"

    def test_expire_returns_count(self):
        table = RoutingTable(ttl_seconds=5.0)
        for i in range(4):
            table.record(new_guid(), "x", now=float(i))
        assert table.expire(now=100.0) == 4
        assert len(table) == 0

    def test_partial_expiry(self):
        table = RoutingTable(ttl_seconds=10.0)
        old, fresh = new_guid(), new_guid()
        table.record(old, "a", now=0.0)
        table.record(fresh, "b", now=8.0)
        table.expire(now=12.0)
        assert not table.seen(old)
        assert table.seen(fresh)


class TestCapacity:
    def test_oldest_evicted_at_capacity(self):
        table = RoutingTable(max_entries=2)
        g1, g2, g3 = new_guid(), new_guid(), new_guid()
        table.record(g1, "a", now=0.0)
        table.record(g2, "b", now=1.0)
        table.record(g3, "c", now=2.0)
        assert len(table) == 2
        assert not table.seen(g1)
        assert table.seen(g2) and table.seen(g3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RoutingTable(ttl_seconds=0.0)
        with pytest.raises(ValueError):
            RoutingTable(max_entries=0)
