"""Tests for the measurement-in-the-overlay validation run."""

import pytest

from repro.gnutella.livesim import MONITOR_ID, LiveOverlayMeasurement


@pytest.fixture(scope="module")
def run():
    sim = LiveOverlayMeasurement(seed=77)
    sessions = sim.run(duration_seconds=1800.0, mean_arrival_gap=20.0)
    return sim, sessions


class TestLiveMeasurement:
    def test_peers_connected_and_recorded(self, run):
        sim, sessions = run
        assert sim.stats.peers_connected > 10
        assert len(sessions) == sim.stats.peers_connected

    def test_every_stream_query_observed_at_hop1(self, run):
        """The paper's attribution claim: a directly connected peer's
        queries all reach the monitor with hop count exactly 1."""
        sim, _ = run
        assert sim.stats.stream_queries_sent > 0
        assert sim.stats.hop1_queries_observed == sim.stats.stream_queries_sent

    def test_relayed_queries_have_higher_hops(self, run):
        sim, _ = run
        for hops, count in sim.stats.hop_histogram.items():
            assert hops >= 1
        assert sim.stats.hop_histogram.get(1, 0) == sim.stats.hop1_queries_observed

    def test_sessions_match_monitor_semantics(self, run):
        sim, sessions = run
        for session in sessions:
            assert session.duration > 0
            times = [q.timestamp for q in session.queries]
            assert times == sorted(times)
            for t in times:
                assert session.start <= t <= session.end

    def test_monitor_is_overlay_node(self, run):
        sim, _ = run
        node = sim.overlay.nodes[MONITOR_ID]
        assert node.is_ultrapeer
        assert node.neighbours  # still connected to the backbone

    def test_departed_peers_removed(self, run):
        sim, _ = run
        # After the run, only backbone + monitor (and possibly a few
        # still-connected churn peers closed by finalize) remain wired.
        for node_id, node in sim.overlay.nodes.items():
            for neighbour in node.neighbours:
                assert neighbour in sim.overlay.nodes or neighbour == MONITOR_ID

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            LiveOverlayMeasurement(seed=1).run(0.0)
