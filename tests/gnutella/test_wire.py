"""Tests for the incremental message-stream parser."""

import pytest

from repro.gnutella.messages import MessageError, Ping, Pong, Query, new_guid
from repro.gnutella.wire import MessageStream


def frames():
    return [
        Ping(guid=new_guid()),
        Query(guid=new_guid(), keywords="free music"),
        Pong(guid=new_guid(), ip="64.1.2.3", shared_files=4),
    ]


class TestMessageStream:
    def test_whole_messages(self):
        stream = MessageStream()
        data = b"".join(m.encode() for m in frames())
        out = stream.feed(data)
        assert [type(m).__name__ for m in out] == ["Ping", "Query", "Pong"]
        assert stream.pending_bytes == 0
        assert stream.messages_decoded == 3

    def test_byte_at_a_time(self):
        stream = MessageStream()
        data = b"".join(m.encode() for m in frames())
        out = []
        for i in range(len(data)):
            out.extend(stream.feed(data[i:i + 1]))
        assert len(out) == 3
        assert stream.bytes_consumed == len(data)

    def test_split_inside_header(self):
        stream = MessageStream()
        data = Query(guid=new_guid(), keywords="abc").encode()
        assert stream.feed(data[:10]) == []
        assert stream.pending_bytes == 10
        out = stream.feed(data[10:])
        assert len(out) == 1

    def test_oversized_payload_rejected(self):
        stream = MessageStream(max_payload=8)
        data = Query(guid=new_guid(), keywords="a long enough query string").encode()
        with pytest.raises(MessageError):
            stream.feed(data)

    def test_drain(self):
        stream = MessageStream()
        data = b"".join(m.encode() for m in frames())
        stream._buffer.extend(data)  # simulate pre-buffered bytes
        assert len(list(stream.drain())) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageStream(max_payload=0)
