"""Tests for Gnutella message types and the binary codec."""

import pytest

from repro.gnutella.messages import (
    DEFAULT_TTL,
    Bye,
    MessageError,
    Ping,
    Pong,
    Query,
    QueryHit,
    decode,
    new_guid,
)


class TestGuidAndHeader:
    def test_new_guid_is_16_bytes_and_unique(self):
        a, b = new_guid(), new_guid()
        assert len(a) == 16 and len(b) == 16
        assert a != b

    def test_new_guid_with_rng_is_reproducible(self):
        import numpy as np

        a = new_guid(np.random.default_rng(3))
        b = new_guid(np.random.default_rng(3))
        assert a == b and len(a) == 16 and isinstance(a, bytes)

    def test_rejects_short_guid(self):
        with pytest.raises(MessageError):
            Ping(guid=b"short")

    def test_rejects_out_of_range_ttl(self):
        with pytest.raises(MessageError):
            Ping(guid=new_guid(), ttl=300)


class TestHopSemantics:
    def test_hop_decrements_ttl_increments_hops(self):
        q = Query(guid=new_guid(), ttl=7, hops=0, keywords="x")
        hopped = q.hop()
        assert hopped.ttl == 6 and hopped.hops == 1
        assert hopped.keywords == "x"

    def test_hop_count_one_identifies_origin_neighbour(self):
        # The measurement methodology: a query generated at a directly
        # connected client arrives with hops == 1.
        q = Query(guid=new_guid(), ttl=DEFAULT_TTL, hops=0, keywords="user query")
        assert q.hop().hops == 1

    def test_cannot_forward_dead_message(self):
        q = Query(guid=new_guid(), ttl=0, hops=7, keywords="x")
        assert not q.forwardable
        with pytest.raises(MessageError):
            q.hop()


class TestQueryIdentity:
    def test_keyword_set_order_insensitive(self):
        a = Query(guid=new_guid(), keywords="free music mp3")
        b = Query(guid=new_guid(), keywords="mp3 Free MUSIC")
        assert a.matches(b)

    def test_different_keywords_differ(self):
        a = Query(guid=new_guid(), keywords="free music")
        b = Query(guid=new_guid(), keywords="free movies")
        assert not a.matches(b)

    def test_sha1_flag(self):
        q = Query(guid=new_guid(), keywords="", sha1_urn="a" * 40)
        assert q.has_sha1


class TestCodec:
    def roundtrip(self, msg):
        decoded, rest = decode(msg.encode())
        assert rest == b""
        assert decoded == msg
        return decoded

    def test_ping_roundtrip(self):
        self.roundtrip(Ping(guid=new_guid(), ttl=3, hops=2))

    def test_pong_roundtrip(self):
        self.roundtrip(Pong(guid=new_guid(), ip="62.1.2.3", port=6346,
                            shared_files=42, shared_kb=12345))

    def test_query_roundtrip(self):
        self.roundtrip(Query(guid=new_guid(), ttl=5, hops=1,
                             keywords="free music mp3", min_speed=64))

    def test_query_with_sha1_roundtrip(self):
        self.roundtrip(Query(guid=new_guid(), keywords="", sha1_urn="ab" * 20))

    def test_queryhit_roundtrip(self):
        self.roundtrip(QueryHit(guid=new_guid(), ttl=4, hops=3, ip="24.9.8.7",
                                n_hits=5, responder_guid=new_guid()))

    def test_bye_roundtrip(self):
        self.roundtrip(Bye(guid=new_guid(), reason="shutting down"))

    def test_stream_decoding(self):
        stream = Ping(guid=new_guid()).encode() + Query(
            guid=new_guid(), keywords="abc"
        ).encode()
        first, rest = decode(stream)
        second, leftover = decode(rest)
        assert isinstance(first, Ping)
        assert isinstance(second, Query)
        assert leftover == b""

    def test_truncated_header_rejected(self):
        with pytest.raises(MessageError):
            decode(b"\x00" * 10)

    def test_truncated_payload_rejected(self):
        data = Pong(guid=new_guid(), ip="1.2.3.4").encode()
        with pytest.raises(MessageError):
            decode(data[:-3])

    def test_unknown_type_rejected(self):
        data = bytearray(Ping(guid=new_guid()).encode())
        data[16] = 0x42
        with pytest.raises(MessageError):
            decode(bytes(data))

    def test_unicode_keywords(self):
        q = Query(guid=new_guid(), keywords="müsic française")
        decoded, _ = decode(q.encode())
        assert decoded.keywords == q.keywords


class TestValidation:
    def test_pong_rejects_bad_ip(self):
        p = Pong(guid=new_guid(), ip="999.1.1.1")
        with pytest.raises(MessageError):
            p.encode()

    def test_pong_rejects_bad_port(self):
        with pytest.raises(MessageError):
            Pong(guid=new_guid(), port=70000)

    def test_pong_rejects_negative_counts(self):
        with pytest.raises(MessageError):
            Pong(guid=new_guid(), shared_files=-1)

    def test_queryhit_requires_hits(self):
        with pytest.raises(MessageError):
            QueryHit(guid=new_guid(), n_hits=0)
