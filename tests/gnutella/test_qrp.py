"""Tests for the Query Routing Protocol tables."""

import numpy as np
import pytest

from repro.gnutella.messages import Query, new_guid
from repro.gnutella.peer import PeerMode, PeerNode
from repro.gnutella.qrp import (
    PackedQRPTables,
    QueryRouteTable,
    keyword_hash,
    keyword_hashes,
    text_hash_table,
)


class TestKeywordHash:
    def test_deterministic(self):
        assert keyword_hash("music", 16) == keyword_hash("music", 16)

    def test_case_insensitive(self):
        assert keyword_hash("Music", 16) == keyword_hash("mUSIC", 16)

    def test_within_range(self):
        for bits in (4, 8, 16, 24):
            value = keyword_hash("some keyword", bits)
            assert 0 <= value < (1 << bits)

    def test_spreads_values(self):
        hashes = {keyword_hash(f"word{i}", 16) for i in range(500)}
        assert len(hashes) > 450  # few collisions at 2**16 slots

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            keyword_hash("x", 0)
        with pytest.raises(ValueError):
            keyword_hash("x", 33)


class TestQueryRouteTable:
    def test_no_false_negatives(self):
        """QRP's defining property: a shared file always matches."""
        table = QueryRouteTable(log_size=12)
        names = [f"artist{i} song{i} mp3" for i in range(100)]
        table.add_library(names)
        for name in names:
            assert table.might_match(name)

    def test_subset_queries_match(self):
        table = QueryRouteTable(log_size=12)
        table.add_file("pink floyd dark side moon")
        assert table.might_match("pink floyd")
        assert table.might_match("moon")

    def test_unrelated_query_usually_misses(self):
        table = QueryRouteTable(log_size=16)
        table.add_file("one single file")
        misses = sum(
            not table.might_match(f"unrelated{i} query{i}") for i in range(200)
        )
        assert misses > 195  # false positives possible but rare

    def test_empty_query_never_matches(self):
        table = QueryRouteTable()
        table.add_file("something")
        assert not table.might_match("")
        assert not table.might_match("   ")

    def test_fill_ratio(self):
        table = QueryRouteTable(log_size=8)
        assert table.fill_ratio == 0.0
        table.add_file("a b c")
        assert 0.0 < table.fill_ratio <= 3 / 256

    def test_merge_union(self):
        a = QueryRouteTable(log_size=10)
        b = QueryRouteTable(log_size=10)
        a.add_file("alpha")
        b.add_file("beta")
        merged = a.merge(b)
        assert merged.might_match("alpha") and merged.might_match("beta")

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            QueryRouteTable(log_size=10).merge(QueryRouteTable(log_size=12))

    def test_invalid_log_size(self):
        with pytest.raises(ValueError):
            QueryRouteTable(log_size=2)


class TestQrpForwarding:
    def make_ultrapeer_with_leaf(self, leaf_library):
        up = PeerNode(node_id="up", ip="64.0.0.1", mode=PeerMode.ULTRAPEER)
        leaf = PeerNode(node_id="leaf", ip="64.0.0.2", mode=PeerMode.LEAF,
                        library=set(leaf_library))
        up.add_neighbour("origin", PeerMode.ULTRAPEER)
        up.add_neighbour("leaf", PeerMode.LEAF)
        up.install_leaf_table("leaf", leaf.build_qrp_table())
        return up

    def test_matching_query_forwarded_to_leaf(self):
        up = self.make_ultrapeer_with_leaf({"rare tune"})
        q = Query(guid=new_guid(), ttl=5, hops=1, keywords="rare tune")
        targets = [dest for dest, _ in up.handle(q, "origin", now=0.0)]
        assert "leaf" in targets

    def test_non_matching_query_spares_leaf(self):
        up = self.make_ultrapeer_with_leaf({"rare tune"})
        q = Query(guid=new_guid(), ttl=5, hops=1, keywords="completely different")
        targets = [dest for dest, _ in up.handle(q, "origin", now=0.0)]
        assert "leaf" not in targets

    def test_table_removed_with_neighbour(self):
        up = self.make_ultrapeer_with_leaf({"rare tune"})
        up.remove_neighbour("leaf")
        assert "leaf" not in up.leaf_tables

    def test_install_validates_neighbour(self):
        up = PeerNode(node_id="up", ip="64.0.0.1", mode=PeerMode.ULTRAPEER)
        with pytest.raises(ValueError):
            up.install_leaf_table("stranger", QueryRouteTable())
        up.add_neighbour("peer", PeerMode.ULTRAPEER)
        with pytest.raises(ValueError):
            up.install_leaf_table("peer", QueryRouteTable())  # not a leaf


class TestBatchedParity:
    """The vectorized forms must be bit-exact with the scalar ones."""

    WORDS = ["alpha", "Beta", "gamma-9", "ümlaut", "x", "longerkeywordhere"]

    def test_keyword_hashes_match_scalar(self):
        for bits in (4, 12, 16, 24, 32):
            batch = keyword_hashes(self.WORDS, bits)
            scalar = [keyword_hash(w, bits) for w in self.WORDS]
            assert batch.tolist() == scalar

    def test_keyword_hashes_empty_batch(self):
        assert keyword_hashes([], 12).size == 0

    def test_keyword_hashes_reject_empty_keyword(self):
        with pytest.raises(ValueError, match="empty"):
            keyword_hashes(["ok", ""], 12)

    def test_keyword_hashes_reject_bad_bits(self):
        with pytest.raises(ValueError, match="bits"):
            keyword_hashes(["ok"], 0)

    def test_text_hash_table_matches_scalar_tokenizer(self):
        texts = ["Alpha beta", "beta beta beta", "", "  ", "one two THREE"]
        hashes, counts = text_hash_table(texts, 12)
        assert counts.sum() == hashes.size
        offset = 0
        for text, count in zip(texts, counts):
            segment = hashes[offset:offset + count].tolist()
            want = sorted({keyword_hash(w, 12) for w in text.lower().split() if w})
            assert segment == want
            offset += count

    def test_packed_tables_match_query_route_table(self):
        libraries = [
            ["alpha beta", "gamma delta"],
            ["beta", "epsilon zeta eta"],
            [],
        ]
        packed = PackedQRPTables(len(libraries), log_size=10)
        for row, names in enumerate(libraries):
            packed.add_libraries(np.repeat(row, len(names)), names)
        queries = ["alpha", "beta", "alpha beta", "gamma", "zeta eta", "nope", ""]
        q_hashes, q_counts = text_hash_table(queries, 10)
        for row, names in enumerate(libraries):
            table = QueryRouteTable(log_size=10)
            table.add_library(names)
            got = packed.might_match(
                np.repeat(row, len(queries)), q_hashes, q_counts
            )
            want = [table.might_match(q) for q in queries]
            assert got.tolist() == want

    def test_to_scalar_round_trip(self):
        packed = PackedQRPTables(2, log_size=8)
        packed.add_libraries(np.array([0, 1]), ["alpha beta", "gamma"])
        for row, names in enumerate((["alpha beta"], ["gamma"])):
            want = QueryRouteTable(log_size=8)
            want.add_library(names)
            assert packed.to_scalar(row)._slots == want._slots

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="log_size"):
            PackedQRPTables(1, log_size=2)
        with pytest.raises(ValueError, match="n_rows"):
            PackedQRPTables(-1, log_size=8)
