"""Unit tests for the analysis modules on hand-crafted sessions."""

import numpy as np
import pytest

from repro.analysis import (
    active_sessions,
    daily_region_counts,
    drift_counts,
    drift_distribution,
    passive_duration_ccdf_by_region,
    passive_fraction_by_hour,
    query_class_sizes,
    query_load,
    sessions_by_region,
)
from repro.analysis.common import session_start_period
from repro.analysis.popularity import daily_class_ranking
from repro.core.events import QueryRecord, SessionRecord
from repro.core.popularity import QueryClassId
from repro.core.regions import KeyPeriod, Region
from repro.filtering import apply_filters


def q(t, keywords="query"):
    return QueryRecord(timestamp=t, keywords=keywords)


def session(region, start, duration, queries=()):
    return SessionRecord(
        peer_ip="64.0.0.1", region=region, start=start, end=start + duration,
        queries=tuple(queries),
    )


class TestCommon:
    def test_session_start_period(self):
        s = session(Region.EUROPE, 3 * 3600.0 + 5, 100.0)
        assert session_start_period(s) is KeyPeriod.H03
        s2 = session(Region.EUROPE, 5 * 3600.0, 100.0)
        assert session_start_period(s2) is None

    def test_sessions_by_region_drops_other(self):
        sessions = [
            session(Region.EUROPE, 0.0, 100.0),
            session(Region.OTHER, 0.0, 100.0),
        ]
        grouped = sessions_by_region(sessions)
        assert len(grouped[Region.EUROPE]) == 1
        assert Region.OTHER not in grouped


class TestPassiveAnalysis:
    def test_fraction_by_hour(self):
        sessions = [
            session(Region.ASIA, 3600.0, 100.0),                     # passive, hour 1
            session(Region.ASIA, 3700.0, 100.0, [q(3750.0)]),        # active, hour 1
        ]
        profiles = passive_fraction_by_hour(sessions)
        assert profiles[Region.ASIA].average[1] == pytest.approx(0.5)

    def test_duration_ccdf_only_passive(self):
        sessions = [
            session(Region.EUROPE, 0.0, 100.0),
            session(Region.EUROPE, 0.0, 300.0),
            session(Region.EUROPE, 0.0, 999.0, [q(10.0)]),  # active: excluded
        ]
        ccdf = passive_duration_ccdf_by_region(sessions)[Region.EUROPE]
        assert ccdf.at(200.0) == pytest.approx(0.5)
        assert ccdf.at(400.0) == 0.0


class TestActiveViews:
    def make_filtered(self):
        sessions = [
            session(Region.NORTH_AMERICA, 0.0, 500.0,
                    [q(50.0, "a"), q(150.0, "b"), q(300.0, "c")]),
            session(Region.NORTH_AMERICA, 0.0, 400.0),  # passive
        ]
        return apply_filters(sessions)

    def test_view_measures(self):
        views = active_sessions(self.make_filtered())
        assert len(views) == 1
        v = views[0]
        assert v.n_queries == 3
        assert v.time_until_first == pytest.approx(50.0)
        assert v.time_after_last == pytest.approx(200.0)
        assert v.interarrivals == pytest.approx((100.0, 150.0))

    def test_last_query_period(self):
        s = session(Region.EUROPE, 11 * 3600.0, 500.0, [q(11 * 3600.0 + 60.0, "x")])
        views = active_sessions(apply_filters([s]))
        assert views[0].last_query_period is KeyPeriod.H11


class TestLoad:
    def test_load_binning(self):
        sessions = [
            session(Region.EUROPE, 0.0, 200.0, [q(30.0 * 60), q(40.0 * 60)]),
            session(Region.NORTH_AMERICA, 0.0, 200.0, [q(100.0)]),
            session(Region.ASIA, 0.0, 200.0, [q(50.0)]),
        ]
        profiles = query_load(sessions)
        eu = profiles[Region.EUROPE]
        assert eu.average[1] == pytest.approx(2.0)  # bin 00:30-01:00

    def test_requires_queries(self):
        with pytest.raises(ValueError):
            query_load([session(Region.EUROPE, 0.0, 100.0)])


class TestPopularityAnalysis:
    def make_sessions(self):
        day = 86400.0
        out = []
        # Day 0: NA issues a, b; EU issues b, c; AS issues d.
        out.append(session(Region.NORTH_AMERICA, 10.0, 300.0,
                           [q(20.0, "a"), q(120.0, "b")]))
        out.append(session(Region.EUROPE, 10.0, 300.0,
                           [q(30.0, "b"), q(130.0, "c")]))
        out.append(session(Region.ASIA, 10.0, 300.0, [q(40.0, "d")]))
        # Day 1: NA issues a only.
        out.append(session(Region.NORTH_AMERICA, day + 10.0, 300.0, [q(day + 20.0, "a")]))
        return out

    def test_daily_region_counts(self):
        daily = daily_region_counts(self.make_sessions())
        assert daily[0][Region.NORTH_AMERICA]["a"] == 1
        assert daily[0][Region.EUROPE]["c"] == 1
        assert 1 in daily

    def test_class_membership(self):
        daily = daily_region_counts(self.make_sessions())
        na_only = daily_class_ranking(daily, 0, QueryClassId.NA_ONLY)
        assert [x for x, _ in na_only] == ["a"]
        na_eu = daily_class_ranking(daily, 0, QueryClassId.NA_EU)
        assert [x for x, _ in na_eu] == ["b"]
        # b's count sums both regions' observations.
        assert na_eu[0][1] == 2

    def test_query_class_sizes(self):
        sizes = query_class_sizes(self.make_sessions(), period_days=1)
        assert sizes.na_eu == pytest.approx(1, abs=1)
        assert sizes.as_only >= 0

    def test_period_longer_than_trace_rejected(self):
        with pytest.raises(ValueError):
            query_class_sizes(self.make_sessions(), period_days=4)

    def test_drift_counts(self):
        counts = drift_counts(self.make_sessions(), Region.NORTH_AMERICA,
                              rank_range=(1, 10), top_n=10)
        assert counts == [1]  # "a" survives to day 1's top 10

    def test_drift_distribution(self):
        dist = drift_distribution([0, 1, 2, 5, 5])
        assert dist[0] == pytest.approx(0.8)   # P[> 0]
        assert dist[4] == pytest.approx(0.4)   # P[> 4]

    def test_drift_distribution_empty(self):
        with pytest.raises(ValueError):
            drift_distribution([])
