"""Tests for the correlation analysis."""

import numpy as np
import pytest

from repro.analysis.correlations import CorrelationResult, session_correlations, spearman
from repro.analysis.active import ActiveSession
from repro.core.regions import Region


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.random(2000)
        b = rng.random(2000)
        assert abs(spearman(a, b)) < 0.06

    def test_rank_based_robust_to_outliers(self):
        a = [1, 2, 3, 4, 1e12]
        b = [1, 2, 3, 4, 5]
        assert spearman(a, b) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2])


def view(region, duration, gaps, after=100.0):
    n = len(gaps) + 1
    return ActiveSession(
        region=region, start=0.0, duration=duration, n_queries=n,
        n_queries_unfiltered=n, time_until_first=10.0, time_after_last=after,
        interarrivals=tuple(gaps), start_period=None, last_query_hour=0,
    )


class TestSessionCorrelations:
    def make_views(self, rng):
        views = []
        for _ in range(200):
            n_gaps = int(rng.integers(0, 9))
            gaps = list(rng.exponential(30.0, n_gaps))
            # Duration grows with query count (the paper's correlation).
            duration = 100.0 + 50.0 * n_gaps + rng.exponential(50.0)
            views.append(view(Region.NORTH_AMERICA, duration, gaps))
        return views

    def test_duration_correlation_detected(self):
        rng = np.random.default_rng(4)
        results = {c.name: c for c in session_correlations(self.make_views(rng))}
        duration = results["duration vs #queries"]
        assert duration.rho > 0.5
        assert duration.significant

    def test_gap_correlation_absent_when_independent(self):
        rng = np.random.default_rng(4)
        results = {c.name: c for c in session_correlations(self.make_views(rng))}
        gaps = results["median interarrival vs #queries"]
        assert abs(gaps.rho) < 0.25

    def test_region_filter(self):
        rng = np.random.default_rng(5)
        views = self.make_views(rng)
        assert session_correlations(views, region=Region.ASIA) == []

    def test_too_few_views(self):
        assert session_correlations([]) == []

    def test_significance_threshold(self):
        weak = CorrelationResult(name="x", rho=0.05, n=400)
        strong = CorrelationResult(name="x", rho=0.5, n=400)
        tiny_sample = CorrelationResult(name="x", rho=0.9, n=5)
        assert not weak.significant
        assert strong.significant
        assert not tiny_sample.significant

    def test_on_shared_trace(self, context):
        results = session_correlations(context.views, region=Region.NORTH_AMERICA)
        by_name = {c.name: c for c in results}
        duration = by_name["duration vs #queries"]
        gaps = by_name["median interarrival vs #queries"]
        # Paper intro claim 4 (reproduced in experiment C1).
        assert duration.significant
        assert duration.rho > abs(gaps.rho)
