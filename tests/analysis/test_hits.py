"""Tests for the hit-rate extension (paper's future work)."""

import numpy as np
import pytest

from repro.analysis.hits import (
    HitRateSummary,
    hit_rate_by_popularity_decile,
    hit_rate_by_region,
    hit_rate_summary,
    hits_ccdf,
)
from repro.core.events import QueryRecord, SessionRecord
from repro.core.popularity import QueryUniverse
from repro.core.regions import Region
from repro.synthesis import HitModel

RNG = np.random.default_rng(44)


def session(region, queries):
    return SessionRecord(
        peer_ip="64.0.0.1", region=region, start=0.0, end=1000.0,
        queries=tuple(queries),
    )


def q(t, keywords="x", hits=0, sha1=False):
    return QueryRecord(timestamp=t, keywords=keywords, hits=hits, sha1=sha1)


class TestHitRateSummary:
    def test_from_hits(self):
        s = HitRateSummary.from_hits([0, 0, 2, 4])
        assert s.n_queries == 4
        assert s.hit_rate == pytest.approx(0.5)
        assert s.mean_hits == pytest.approx(1.5)
        assert s.mean_hits_answered == pytest.approx(3.0)

    def test_all_misses(self):
        s = HitRateSummary.from_hits([0, 0])
        assert s.hit_rate == 0.0
        assert s.mean_hits_answered == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HitRateSummary.from_hits([])


class TestAnalysisFunctions:
    def make_sessions(self):
        return [
            session(Region.NORTH_AMERICA, [q(10.0, "a", hits=3), q(20.0, "b", hits=0)]),
            session(Region.EUROPE, [q(30.0, "c", hits=1)]),
            session(Region.EUROPE, [q(40.0, "u", hits=0, sha1=True)]),
        ]

    def test_overall_summary(self):
        s = hit_rate_summary(self.make_sessions())
        assert s.n_queries == 4
        assert s.hit_rate == pytest.approx(0.5)

    def test_sha1_restriction(self):
        s = hit_rate_summary(self.make_sessions(), sha1=True)
        assert s.n_queries == 1 and s.hit_rate == 0.0
        s2 = hit_rate_summary(self.make_sessions(), sha1=False)
        assert s2.n_queries == 3

    def test_by_region(self):
        by_region = hit_rate_by_region(self.make_sessions())
        assert by_region[Region.NORTH_AMERICA].n_queries == 2
        assert by_region[Region.EUROPE].n_queries == 2
        assert Region.ASIA not in by_region

    def test_hits_ccdf(self):
        ccdf = hits_ccdf(self.make_sessions())
        assert ccdf.at(0.0) == pytest.approx(0.5)  # P[hits > 0]
        assert ccdf.at(3.0) == 0.0

    def test_hits_ccdf_empty(self):
        with pytest.raises(ValueError):
            hits_ccdf([session(Region.ASIA, [])])

    def test_decile_rows(self):
        sessions = []
        # "popular" issued 10x with hits, "rare" once without.
        for i in range(10):
            sessions.append(session(Region.NORTH_AMERICA, [q(10.0 + i, "popular", hits=2)]))
        sessions.append(session(Region.NORTH_AMERICA, [q(99.0, "rare", hits=0)]))
        rows = hit_rate_by_popularity_decile(sessions, n_bins=2)
        assert rows[0][1] > rows[-1][1]  # top decile hits more

    def test_decile_validation(self):
        with pytest.raises(ValueError):
            hit_rate_by_popularity_decile([], n_bins=1)


class TestHitModel:
    def test_popular_queries_hit_more(self):
        universe = QueryUniverse(seed=9)
        model = HitModel(universe)
        from repro.core.popularity import QueryClassId

        ranking = universe.daily_ranking(0, QueryClassId.NA_ONLY)
        top = model.expected_hits(0, ranking[0])
        bottom = model.expected_hits(0, ranking[-1])
        assert top > bottom

    def test_sha1_low_constant(self):
        universe = QueryUniverse(seed=9)
        model = HitModel(universe)
        assert model.expected_hits(0, "any", sha1=True) == pytest.approx(0.25)

    def test_unknown_string_low(self):
        universe = QueryUniverse(seed=9)
        model = HitModel(universe)
        assert model.expected_hits(0, "never heard of it") == pytest.approx(0.1)

    def test_sampling_nonnegative_ints(self):
        universe = QueryUniverse(seed=9)
        model = HitModel(universe)
        from repro.core.popularity import QueryClassId

        ranking = universe.daily_ranking(0, QueryClassId.EU_ONLY)
        samples = [model.sample_hits(RNG, 0, ranking[0]) for _ in range(100)]
        assert all(isinstance(s, int) and s >= 0 for s in samples)

    def test_validation(self):
        universe = QueryUniverse(seed=9)
        with pytest.raises(ValueError):
            HitModel(universe, reachable_peers=0)
        with pytest.raises(ValueError):
            HitModel(universe, replication_rate=0.0)

    def test_universe_lookup_roundtrip(self):
        universe = QueryUniverse(seed=9)
        from repro.core.popularity import QueryClassId

        ranking = universe.daily_ranking(2, QueryClassId.AS_ONLY)
        cls, rank = universe.lookup(2, ranking[3])
        assert cls is QueryClassId.AS_ONLY
        assert rank == 4
        assert universe.lookup(2, "nonexistent") is None


class TestTraceHits:
    def test_synthesized_queries_carry_hits(self, small_trace):
        hits = [q.hits for s in small_trace.sessions for q in s.queries]
        assert any(h > 0 for h in hits)
        assert all(h >= 0 for h in hits)

    def test_queryhit_counter_includes_observed(self, small_trace):
        assert small_trace.counters["hop1_queryhits"] == sum(
            q.hits for s in small_trace.sessions for q in s.queries
        )
        assert small_trace.counters["queryhit_messages"] >= small_trace.counters["hop1_queryhits"]

    def test_sha1_hit_rate_lower(self, small_trace):
        sha1 = hit_rate_summary(small_trace.sessions, sha1=True)
        user = hit_rate_summary(small_trace.sessions, sha1=False)
        assert sha1.hit_rate < user.hit_rate
