"""Tests for availability/churn and caching analysis."""

import numpy as np
import pytest

from repro.analysis.availability import (
    aggregate_availability,
    churn_by_hour,
    concurrency_curve,
)
from repro.analysis.caching import LruResultCache, cache_hit_rates, query_stream
from repro.core.events import QueryRecord, SessionRecord
from repro.core.regions import Region


def session(start, duration, queries=()):
    return SessionRecord(
        peer_ip="64.0.0.1", region=Region.NORTH_AMERICA,
        start=start, end=start + duration, queries=tuple(queries),
    )


class TestChurn:
    def test_arrival_departure_bins(self):
        sessions = [session(3600.0, 100.0), session(3700.0, 7200.0)]
        churn = churn_by_hour(sessions)
        assert churn.arrivals[1] == pytest.approx(2.0)
        assert churn.departures[1] == pytest.approx(1.0)
        assert churn.departures[3] == pytest.approx(1.0)  # 3700+7200 -> hour 3

    def test_balance(self):
        sessions = [session(0.0, 50.0), session(100.0, 50.0)]
        assert churn_by_hour(sessions).churn_balance == pytest.approx(1.0)

    def test_truncated_sessions_not_departures(self):
        sessions = [session(0.0, 50.0), session(100.0, 900.0)]
        churn = churn_by_hour(sessions, end_time=1000.0)
        assert churn.total_arrivals == 2
        assert churn.total_departures == 1
        assert churn.churn_balance == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            churn_by_hour([])


class TestConcurrency:
    def test_step_counting(self):
        sessions = [session(0.0, 1000.0), session(100.0, 1000.0), session(2000.0, 100.0)]
        times, counts = concurrency_curve(sessions, step_seconds=50.0)
        # At t=150 both of the first two sessions are open.
        idx = np.searchsorted(times, 150.0)
        assert counts[idx] == 2
        assert counts[-1] <= 1

    def test_never_negative(self, small_trace):
        _, counts = concurrency_curve(small_trace.sessions, step_seconds=600.0)
        assert counts.min() >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            concurrency_curve([])
        with pytest.raises(ValueError):
            concurrency_curve([session(0.0, 1.0)], step_seconds=0.0)


class TestAvailability:
    def test_fraction(self):
        sessions = [session(0.0, 100.0), session(0.0, 300.0)]
        assert aggregate_availability(sessions, 1000.0) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            aggregate_availability([], 100.0)
        with pytest.raises(ValueError):
            aggregate_availability([session(0.0, 1.0)], 0.0)


class TestLruCache:
    def test_hit_after_insert(self):
        cache = LruResultCache(capacity=4)
        assert not cache.lookup("abc", now=0.0)
        assert cache.lookup("abc", now=10.0)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_ttl_expiry(self):
        cache = LruResultCache(capacity=4, ttl=100.0)
        cache.lookup("abc", now=0.0)
        assert not cache.lookup("abc", now=200.0)  # expired

    def test_lru_eviction(self):
        cache = LruResultCache(capacity=2)
        cache.lookup("a", 0.0)
        cache.lookup("b", 1.0)
        cache.lookup("a", 2.0)   # refresh a
        cache.lookup("c", 3.0)   # evicts b
        assert cache.lookup("a", 4.0)
        assert not cache.lookup("b", 5.0)

    def test_capacity_bound(self):
        cache = LruResultCache(capacity=3)
        for i in range(20):
            cache.lookup(f"q{i}", float(i))
        assert len(cache) <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            LruResultCache(capacity=0)
        with pytest.raises(ValueError):
            LruResultCache(capacity=1, ttl=0.0)


class TestCacheHitRates:
    def make_streams(self):
        repeats = [QueryRecord(timestamp=float(i), keywords="same query") for i in range(20)]
        raw = [session(0.0, 100.0, repeats)]
        user = [session(0.0, 100.0, repeats[:1])]
        return raw, user

    def test_raw_beats_user(self):
        raw, user = self.make_streams()
        rows = cache_hit_rates(raw, user, capacities=(8,))
        assert rows[0]["raw_hit_rate"] > rows[0]["user_hit_rate"]

    def test_query_stream_sorted_normalized(self):
        raw, _ = self.make_streams()
        stream = query_stream(raw)
        times = [t for t, _ in stream]
        assert times == sorted(times)
        assert all(k == k.lower() for _, k in stream)

    def test_empty_rejected(self):
        raw, _ = self.make_streams()
        with pytest.raises(ValueError):
            cache_hit_rates(raw, [session(0.0, 50.0)])

    def test_paper_claim_on_trace(self, small_trace, filtered):
        rows = cache_hit_rates(small_trace.sessions, filtered.sessions, capacities=(256,))
        assert rows[0]["raw_hit_rate"] > 2 * rows[0]["user_hit_rate"]
