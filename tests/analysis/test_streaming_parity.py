"""Streaming reducers vs the in-memory reference, product by product.

``streamed_equivalence_checks`` is the same comparator the paper-scale
benchmark gate runs at 40 days; here it runs at smoke scale on every
test pass so a reducer regression fails in seconds, not in the
benchmark suite.  Tolerance is zero by construction: both sides draw
the identical sharded synthesis (same config, same ``shard_days``), so
every Figure 1-11 product must match bit for bit.
"""

import pytest

from repro.analysis import run_streaming
from repro.analysis.active import active_sessions
from repro.analysis.paper_scale import streamed_equivalence_checks
from repro.filtering import apply_filters_columnar
from repro.synthesis import SynthesisConfig, TraceSynthesizer


@pytest.fixture(scope="module")
def config():
    return SynthesisConfig(days=0.4, mean_arrival_rate=0.3, seed=6161, shard_days=0.1)


@pytest.fixture(scope="module")
def sharded(config, tmp_path_factory):
    dest = tmp_path_factory.mktemp("parity-shards") / "trace"
    return TraceSynthesizer(config).run_sharded(dest)


class TestEquivalenceChecks:
    def test_every_product_is_bit_identical(self, config, tmp_path):
        outcome = streamed_equivalence_checks(config, workdir=tmp_path)
        assert outcome["tolerance"] == 0.0
        assert outcome["days"] == config.days
        failed = [name for name, ok in outcome["checks"].items() if not ok]
        assert outcome["all_identical"] is True, f"diverged: {failed}"

    def test_check_list_covers_the_paper_products(self, config, tmp_path):
        outcome = streamed_equivalence_checks(config, workdir=tmp_path)
        assert set(outcome["checks"]) == {
            "trace_concat_byte_identical",
            "table2_report",
            "f1_geographic",
            "f2_shared_files",
            "f3_load",
            "f4_passive_fraction",
            "f5_passive_durations",
            "f6_queries_per_session",
            "f7_first_query",
            "f8_interarrival",
            "f9_time_after_last",
            "c1_correlations",
            "t3_f10_f11_daily_counts",
        }


class TestActiveViews:
    def test_streamed_views_equal_record_pipeline(self, sharded):
        # views() is the record-view opt-out of streaming: the
        # materialized ActiveSession list must equal what the in-memory
        # pipeline derives from the same trace.
        streamed = run_streaming(sharded)
        reference = active_sessions(
            apply_filters_columnar(sharded.concat()).to_filter_result()
        )
        assert streamed.active.views() == reference
