"""Analysis measures must not care which filter backend fed them.

Every dispatching analysis entry point (``daily_region_counts``,
``active_sessions``, the passive CCDFs) is run here against both the
record-loop :class:`FilterResult` and the vectorized
:class:`ColumnarFilterResult` built from the same trace, and the
outputs are compared for equality -- values, not approximations.
"""

import pytest

from repro.analysis import active_sessions
from repro.analysis.common import MAJOR
from repro.analysis.passive import (
    passive_duration_ccdf_by_period,
    passive_duration_ccdf_by_region,
)
from repro.analysis.popularity import daily_region_counts, query_class_sizes
from repro.filtering import apply_filters_columnar
from repro.measurement import ColumnarTrace


@pytest.fixture(scope="module")
def cfiltered(small_trace):
    return apply_filters_columnar(ColumnarTrace.from_trace(small_trace))


class TestDailyRegionCounts:
    def test_counts_equal(self, filtered, cfiltered):
        loop = daily_region_counts(filtered.sessions)
        columnar = daily_region_counts(cfiltered)
        assert loop == columnar

    def test_query_class_sizes_equal(self, filtered, cfiltered):
        assert query_class_sizes(filtered.sessions) == query_class_sizes(cfiltered)


class TestActiveSessions:
    def test_views_equal(self, filtered, cfiltered):
        loop = active_sessions(filtered)
        columnar = active_sessions(cfiltered)
        assert len(loop) > 0
        assert loop == columnar


class TestPassiveCcdfs:
    def test_by_region_equal(self, filtered, cfiltered):
        loop = passive_duration_ccdf_by_region(filtered.sessions)
        columnar = passive_duration_ccdf_by_region(cfiltered)
        assert set(loop) == set(columnar)
        for region, ccdf in loop.items():
            assert ccdf.x.tolist() == columnar[region].x.tolist()
            assert ccdf.fraction.tolist() == columnar[region].fraction.tolist()

    @pytest.mark.parametrize("region", sorted(MAJOR, key=lambda r: r.value))
    def test_by_period_equal(self, filtered, cfiltered, region):
        loop = passive_duration_ccdf_by_period(filtered.sessions, region)
        columnar = passive_duration_ccdf_by_period(cfiltered, region)
        assert set(loop) == set(columnar)
        for period, ccdf in loop.items():
            assert ccdf.x.tolist() == columnar[period].x.tolist()
            assert ccdf.fraction.tolist() == columnar[period].fraction.tolist()
