"""Analysis checks on the shared synthesized trace (paper shape tests)."""

import numpy as np
import pytest

from repro.analysis import (
    active_sessions,
    first_query_ccdf,
    geographic_distribution,
    interarrival_ccdf,
    passive_duration_ccdf_by_region,
    passive_fraction_by_hour,
    queries_per_session_ccdf,
    queries_per_session_ccdf_unfiltered,
    shared_files_distribution,
    table1,
    table2,
    time_after_last_ccdf,
)
from repro.core.regions import Region

NA, EU, AS = Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA


@pytest.fixture(scope="module")
def views(filtered):
    return active_sessions(filtered)


class TestGeographic:
    def test_one_hop_representative_of_all_peers(self, small_trace):
        """Figure 1's representativeness result."""
        profile = geographic_distribution(small_trace)
        for region in (NA, EU, AS):
            assert profile.max_divergence(region) < 0.15

    def test_na_dominates(self, small_trace):
        profile = geographic_distribution(small_trace)
        assert np.all(profile.one_hop[NA] > profile.one_hop[EU])
        assert np.all(profile.one_hop[NA] > profile.one_hop[AS])


class TestSharedFiles:
    def test_distributions_close(self, small_trace):
        profile = shared_files_distribution(small_trace)
        assert profile.max_divergence() < 0.05

    def test_free_riders_present(self, small_trace):
        profile = shared_files_distribution(small_trace)
        assert 0.05 <= profile.free_rider_fraction() <= 0.2

    def test_decreasing_tail(self, small_trace):
        profile = shared_files_distribution(small_trace)
        assert profile.one_hop[1] > profile.one_hop[80]


class TestPassive:
    def test_fraction_bands(self, filtered):
        profiles = passive_fraction_by_hour(filtered.sessions)
        assert 0.75 <= profiles[NA].overall_average <= 0.90
        assert 0.70 <= profiles[EU].overall_average <= 0.85
        assert 0.78 <= profiles[AS].overall_average <= 0.92

    def test_duration_regional_ordering(self, filtered):
        """Fig. 5(a): EU sessions longest, Asia shortest."""
        ccdfs = passive_duration_ccdf_by_region(filtered.sessions)
        at_2min = {r: c.at(120.0) for r, c in ccdfs.items()}
        assert at_2min[EU] > at_2min[NA] > at_2min[AS]

    def test_all_durations_above_cutoff(self, filtered):
        for s in filtered.sessions:
            assert s.duration >= 64.0


class TestActive:
    def test_queries_ordering(self, views):
        """Fig. 6(a): EU issues most queries, Asia fewest."""
        ccdfs = queries_per_session_ccdf(views)
        at_5 = {r: c.at(4.5) for r, c in ccdfs.items()}
        assert at_5[EU] > at_5[NA] > at_5[AS]

    def test_unfiltered_counts_higher(self, views):
        """Fig. 6(c): without rules 4-5 the counts grow."""
        with_rules = queries_per_session_ccdf(views)
        without = queries_per_session_ccdf_unfiltered(views)
        for region in (NA, EU, AS):
            assert without[region].at(4.5) >= with_rules[region].at(4.5)

    def test_first_query_band(self, views):
        """Fig. 7(a): ~40% of sessions query within 30 s."""
        ccdfs = first_query_ccdf(views)
        for region in (NA, EU):
            assert 0.25 <= 1.0 - ccdfs[region].at(30.0) <= 0.60

    def test_interarrival_ordering(self, views):
        """Fig. 8(a): EU gaps shortest, NA longest."""
        ccdfs = interarrival_ccdf(views)
        at_100 = {r: c.at(100.0) for r, c in ccdfs.items()}
        assert at_100[EU] < at_100[NA]

    def test_after_last_asia_fastest(self, views):
        """Fig. 9(a): Asian peers close much sooner after the last query."""
        ccdfs = time_after_last_ccdf(views)
        assert ccdfs[AS].at(1000.0) < ccdfs[NA].at(1000.0)
        assert ccdfs[AS].at(1000.0) < ccdfs[EU].at(1000.0)

    def test_after_last_heavier_than_interarrival(self, views):
        """Paper conclusion (5)."""
        after = time_after_last_ccdf(views)[NA]
        gaps = interarrival_ccdf(views)[NA]
        assert after.at(1000.0) > 3 * gaps.at(1000.0)


class TestSummaryTables:
    def test_table1_rows(self, small_trace):
        rows = table1(small_trace)
        assert rows["direct_connections"] == small_trace.n_connections
        assert rows["query_messages"] > rows["hop1_query_messages"]
        assert rows["ping_messages"] > 0

    def test_table2_identity(self, filtered):
        rows = table2(filtered.report)
        assert (
            rows["initial_queries"]
            - rows["rule1_removed_queries"]
            - rows["rule2_removed_queries"]
            - rows["rule3_removed_queries"]
            == rows["final_queries"]
        )
