"""Tests for the ground-truth behaviour layers (population, users, arrivals)."""

import numpy as np
import pytest

from repro.agents import (
    ULTRAPEER_FRACTION,
    ArrivalProcess,
    PeerPopulation,
    UserBehavior,
    relative_intensity,
    sample_shared_files,
    sample_shared_files_batch,
)
from repro.core.parameters import MIN_SESSION_SECONDS
from repro.core.regions import Region


class TestPopulation:
    def test_spawn_attributes(self):
        pop = PeerPopulation(seed=1)
        identity = pop.spawn(hour=12)
        assert identity.ip.count(".") == 3
        assert identity.region in Region
        assert identity.shared_files >= 0
        assert pop.geoip.lookup(identity.ip) is identity.region

    def test_unique_ips(self):
        pop = PeerPopulation(seed=2)
        ips = [pop.spawn(0).ip for _ in range(3000)]
        assert len(set(ips)) == 3000

    def test_region_mix_tracks_fig1(self):
        pop = PeerPopulation(seed=3)
        regions = [pop.spawn(3).region for _ in range(4000)]
        na = regions.count(Region.NORTH_AMERICA) / len(regions)
        assert na == pytest.approx(0.80, abs=0.04)  # Fig. 1 anchor at 03:00

    def test_ultrapeer_fraction(self):
        # Section 3.1: ~40% of connections from ultrapeers.
        pop = PeerPopulation(seed=4)
        ups = [pop.spawn(12).ultrapeer for _ in range(5000)]
        assert np.mean(ups) == pytest.approx(ULTRAPEER_FRACTION, abs=0.04)

    def test_leaf_only_client_never_ultrapeer(self):
        pop = PeerPopulation(seed=5)
        for _ in range(2000):
            identity = pop.spawn(12)
            if identity.profile.name == "mutella":
                assert not identity.ultrapeer

    def test_region_override(self):
        pop = PeerPopulation(seed=6)
        identity = pop.spawn(0, region=Region.ASIA)
        assert identity.region is Region.ASIA


class TestSharedFiles:
    def test_free_rider_spike(self):
        rng = np.random.default_rng(1)
        sizes = [sample_shared_files(rng) for _ in range(10_000)]
        zero_frac = sizes.count(0) / len(sizes)
        assert zero_frac == pytest.approx(0.10, abs=0.02)

    def test_geometric_body(self):
        rng = np.random.default_rng(2)
        sizes = np.array([sample_shared_files(rng) for _ in range(10_000)])
        body = sizes[sizes > 0]
        assert body.mean() == pytest.approx(25.0, rel=0.1)


class TestUserBehavior:
    @pytest.fixture(scope="class")
    def behavior(self):
        return UserBehavior(seed=7)

    def test_passive_plan_has_no_queries(self, behavior):
        plans = [behavior.plan_session(Region.NORTH_AMERICA, 0.0) for _ in range(300)]
        for plan in plans:
            if plan.passive:
                assert not plan.queries
                assert plan.duration >= MIN_SESSION_SECONDS

    def test_active_plan_invariants(self, behavior):
        actives = []
        for i in range(600):
            plan = behavior.plan_session(Region.EUROPE, float(i * 100))
            if not plan.passive:
                actives.append(plan)
        assert actives
        for plan in actives:
            offsets = [o for o, _ in plan.queries]
            assert offsets == sorted(offsets)
            assert offsets[-1] <= plan.duration
            assert plan.duration >= 64.0  # model describes surviving sessions

    def test_passive_fraction_band(self, behavior):
        plans = [behavior.plan_session(Region.ASIA, 0.0) for _ in range(2000)]
        frac = np.mean([p.passive for p in plans])
        assert 0.78 <= frac <= 0.92  # Fig. 4 Asia band

    def test_pre_connect_queries_present_sometimes(self, behavior):
        plans = [behavior.plan_session(Region.NORTH_AMERICA, 0.0) for _ in range(800)]
        actives = [p for p in plans if not p.passive]
        with_pre = [p for p in actives if p.pre_connect_queries]
        assert 0.3 <= len(with_pre) / len(actives) <= 0.9

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            UserBehavior(pre_connect_prob=1.5)


class TestArrivals:
    def test_ordering_and_range(self):
        proc = ArrivalProcess(mean_rate=0.5, seed=1)
        times = list(proc.arrivals(0.0, 3600.0))
        assert times == sorted(times)
        assert all(0.0 <= t < 3600.0 for t in times)

    def test_mean_rate_respected(self):
        proc = ArrivalProcess(mean_rate=0.5, seed=2)
        times = list(proc.arrivals(0.0, 86400.0))
        assert len(times) == pytest.approx(0.5 * 86400.0, rel=0.1)

    def test_intensity_bounded(self):
        values = [relative_intensity(h) for h in range(24)]
        assert min(values) >= 0.75
        assert max(values) <= 1.25

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ArrivalProcess(mean_rate=0.0)
        with pytest.raises(ValueError):
            list(ArrivalProcess(1.0).arrivals(10.0, 5.0))


class TestPopulationPublicAllocation:
    """The allocation seams the synthesizer's background pass relies on."""

    def test_allocate_ip_is_unique_and_in_region(self):
        pop = PeerPopulation(seed=5)
        ips = {pop.allocate_ip(Region.EUROPE) for _ in range(200)}
        assert len(ips) == 200
        assert all(pop.geoip.lookup(ip) == Region.EUROPE for ip in ips)

    def test_allocate_ips_batch_matches_scalar_semantics(self):
        a = PeerPopulation(seed=9)
        b = PeerPopulation(seed=9)
        batch = a.allocate_ips(Region.ASIA, 50)
        singles = [b.allocate_ip(Region.ASIA) for _ in range(50)]
        assert batch == singles

    def test_sample_background_peer_region_follows_mix(self):
        pop = PeerPopulation(seed=11)
        seen = [pop.sample_background_peer(hour=20)[1] for _ in range(500)]
        # Hour 20 UTC is a North-America-heavy hour in Figure 1.
        assert seen.count(Region.NORTH_AMERICA) > seen.count(Region.ASIA)
        ips = [pop.sample_background_peer(hour=3)[0] for _ in range(100)]
        assert len(set(ips)) == 100

    def test_shard_counter_ranges_are_disjoint(self):
        stride = 1000
        shard0 = PeerPopulation(seed=3, ip_counter_start=0, ip_counter_limit=stride)
        shard1 = PeerPopulation(seed=3, ip_counter_start=stride, ip_counter_limit=2 * stride)
        ips0 = set(shard0.allocate_ips(Region.EUROPE, 200))
        ips1 = set(shard1.allocate_ips(Region.EUROPE, 200))
        assert not ips0 & ips1

    def test_exhausted_counter_range_raises(self):
        pop = PeerPopulation(seed=3, ip_counter_start=0, ip_counter_limit=10)
        pop.allocate_ips(Region.EUROPE, 10)
        with pytest.raises(RuntimeError):
            pop.allocate_ip(Region.EUROPE)


class TestSharedFilesBatch:
    def test_batch_matches_scalar_distribution(self):
        rng = np.random.default_rng(17)
        batch = sample_shared_files_batch(rng, 20000)
        assert batch.min() >= 0
        zero_frac = np.mean(batch == 0)
        # point mass at zero: free riders plus the geometric's own mass
        assert 0.08 < zero_frac < 0.16
        assert np.mean(batch) == pytest.approx(25.0 * 0.9, rel=0.1)

    def test_batch_rejects_negative_count(self):
        rng = np.random.default_rng(17)
        with pytest.raises(ValueError):
            sample_shared_files_batch(rng, -1)

    def test_empty_batch(self):
        rng = np.random.default_rng(17)
        assert len(sample_shared_files_batch(rng, 0)) == 0


class TestVectorizedArrivals:
    def test_arrival_times_sorted_and_in_window(self):
        proc = ArrivalProcess(mean_rate=0.5, seed=1)
        times = proc.arrival_times(1000.0, 5000.0)
        assert list(times) == sorted(times)
        assert times.min() >= 1000.0 and times.max() < 5000.0

    def test_arrival_times_mean_rate(self):
        proc = ArrivalProcess(mean_rate=0.5, seed=2)
        times = proc.arrival_times(0.0, 86400.0)
        assert len(times) == pytest.approx(0.5 * 86400.0, rel=0.1)

    def test_arrival_times_diurnal_modulation(self):
        """Hour-of-day counts must track the intensity table."""
        from repro.agents.diurnal import intensity_table

        proc = ArrivalProcess(mean_rate=2.0, seed=3)
        times = proc.arrival_times(0.0, 10 * 86400.0)
        hours = ((times % 86400.0) // 3600.0).astype(int)
        counts = np.bincount(hours, minlength=24).astype(float)
        table = intensity_table()
        ratio = (counts / counts.mean()) / (table / table.mean())
        assert np.all(np.abs(ratio - 1.0) < 0.1)

    def test_arrival_times_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ArrivalProcess(1.0).arrival_times(10.0, 5.0)

    def test_intensity_table_matches_scalar(self):
        from repro.agents.diurnal import intensity_table

        table = intensity_table()
        assert table.shape == (24,)
        for h in range(24):
            assert table[h] == pytest.approx(relative_intensity(h))
