"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_synthesize_defaults(self):
        args = build_parser().parse_args(["synthesize"])
        assert args.days == 2.0 and args.rate == 0.35

    def test_experiment_ids(self):
        args = build_parser().parse_args(["experiment", "F5", "F6"])
        assert args.ids == ["F5", "F6"]

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "--peers", "50", "--hours", "0.5"])
        assert args.peers == 50 and args.hours == 0.5
        assert args.backend == "columnar" and args.jobs == 1

    def test_generate_backend_and_jobs_flags(self):
        args = build_parser().parse_args(
            ["generate", "--backend", "event", "--jobs", "3"]
        )
        assert args.backend == "event" and args.jobs == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--backend", "scalar"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--jobs", "0"])

    def test_overlay_args(self):
        args = build_parser().parse_args(["overlay", "--peers", "50", "--ttl", "3"])
        assert args.peers == 50 and args.ttl == 3
        assert args.backend == "columnar" and args.delta == 30.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["overlay", "--backend", "scalar"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["overlay", "--jobs", "0"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analysis_jobs_flag(self):
        args = build_parser().parse_args(["experiment", "all", "--analysis-jobs", "4"])
        assert args.analysis_jobs == 4
        assert build_parser().parse_args(["experiment", "T1"]).analysis_jobs == 1

    def test_analysis_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "T1", "--analysis-jobs", "0"])

    def test_cache_format_flag(self):
        args = build_parser().parse_args(["synthesize", "--cache-format", "jsonl"])
        assert args.cache_format == "jsonl"
        assert build_parser().parse_args(["synthesize"]).cache_format == "npz"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synthesize", "--cache-format", "xml"])


class TestCommands:
    def test_synthesize_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["synthesize", "--days", "0.02", "--rate", "0.2",
                     "--seed", "1", "--out", str(out)])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "synthesized" in captured

    def test_experiment_unknown_id(self, capsys):
        code = main(["experiment", "F99", "--days", "0.02", "--rate", "0.1"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_runs(self, capsys):
        code = main(["experiment", "F2", "--days", "0.05", "--rate", "0.2", "--seed", "4"])
        assert code == 0
        assert "F2" in capsys.readouterr().out

    def test_experiment_parallel_jobs(self, tmp_path, capsys):
        code = main(["experiment", "T1", "T2", "--days", "0.05", "--rate", "0.2",
                     "--seed", "4", "--cache-dir", str(tmp_path),
                     "--analysis-jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        # Deterministic order regardless of worker scheduling.
        assert out.index("T1") < out.index("T2")
        # The workers shared one columnar cache entry.
        assert sorted(tmp_path.glob("*.npz"))

    def test_cache_format_jsonl_writes_jsonl_entry(self, tmp_path, capsys):
        code = main(["synthesize", "--days", "0.02", "--rate", "0.2", "--seed", "1",
                     "--cache-dir", str(tmp_path), "--cache-format", "jsonl"])
        assert code == 0
        assert sorted(tmp_path.glob("*.jsonl"))
        assert not sorted(tmp_path.glob("*.npz"))

    def test_generate_writes_workload(self, tmp_path, capsys):
        out = tmp_path / "workload.jsonl"
        code = main(["generate", "--peers", "20", "--hours", "0.2",
                     "--seed", "3", "--out", str(out)])
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines
        record = json.loads(lines[0])
        assert {"region", "start", "duration", "passive", "queries"} <= set(record)

    def test_overlay_backends_agree(self, capsys):
        outputs = []
        for backend in ("columnar", "event"):
            code = main(["overlay", "--peers", "30", "--hours", "0.1",
                         "--seed", "5", "--backend", backend])
            assert code == 0
            out = capsys.readouterr().out
            assert "simulated" in out and "hop-1 captures" in out
            # Strip the backend tag: every number must be identical.
            outputs.append(out.replace(backend, ""))
        assert outputs[0] == outputs[1]

    def test_generate_event_backend_writes_workload(self, tmp_path, capsys):
        out = tmp_path / "workload.jsonl"
        code = main(["generate", "--peers", "10", "--hours", "0.2", "--seed", "3",
                     "--backend", "event", "--out", str(out)])
        assert code == 0
        assert out.read_text().splitlines()

    def test_generate_writes_npz(self, tmp_path, capsys):
        from repro.core import from_npz

        out = tmp_path / "workload.npz"
        code = main(["generate", "--peers", "20", "--hours", "0.2",
                     "--seed", "3", "--jobs", "2", "--out", str(out)])
        assert code == 0
        workload = from_npz(out)
        assert workload.n_sessions > 0
        assert "workload written" in capsys.readouterr().out

    def test_generate_npz_from_event_backend(self, tmp_path, capsys):
        from repro.core import from_npz

        out = tmp_path / "workload.npz"
        code = main(["generate", "--peers", "10", "--hours", "0.2", "--seed", "3",
                     "--backend", "event", "--out", str(out)])
        assert code == 0
        assert from_npz(out).n_sessions > 0


class TestFiguresCommand:
    def test_figures_rendered(self, tmp_path, capsys):
        outdir = tmp_path / "figs"
        code = main(["figures", "--days", "0.05", "--rate", "0.25",
                     "--seed", "9", "--outdir", str(outdir)])
        assert code == 0
        svgs = sorted(outdir.glob("*.svg"))
        assert svgs
        assert "rendered" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_same_trace_is_close(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        assert main(["synthesize", "--days", "0.1", "--rate", "0.3",
                     "--seed", "5", "--out", str(a)]) == 0
        code = main(["compare", str(a), str(a)])
        assert code == 0
        assert "3/3 measures within tolerance" in capsys.readouterr().out

    def test_compare_different_seeds_still_close(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["synthesize", "--days", "0.1", "--rate", "0.3", "--seed", "5", "--out", str(a)])
        main(["synthesize", "--days", "0.1", "--rate", "0.3", "--seed", "6", "--out", str(b)])
        code = main(["compare", str(a), str(b), "--tolerance", "0.15"])
        assert code == 0


class TestStreamFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["synthesize"])
        assert args.stream is False
        assert args.shard_hours == 24.0
        assert args.max_rss_mb is None

    def test_experiment_accepts_stream(self):
        args = build_parser().parse_args(
            ["experiment", "T2", "--stream", "--shard-hours", "6",
             "--max-rss-mb", "512"]
        )
        assert args.stream and args.shard_hours == 6.0
        assert args.max_rss_mb == 512.0


class TestStreamCommands:
    def test_synthesize_stream_reports_shards(self, tmp_path, capsys):
        code = main(["synthesize", "--stream", "--days", "0.1",
                     "--shard-hours", "1.2", "--rate", "0.2", "--seed", "5",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace cache miss" in out
        assert "in 2 shard(s)" in out
        # A second run opens the published sharded entry.
        assert main(["synthesize", "--stream", "--days", "0.1",
                     "--shard-hours", "1.2", "--rate", "0.2", "--seed", "5",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "trace cache hit" in capsys.readouterr().out

    def test_streamed_out_matches_in_memory_synthesis(self, tmp_path, capsys):
        # --out on a streamed run is the explicit opt-out of bounded
        # memory; the concatenated trace must be byte-identical to the
        # single-file path under the same config (shard layout is part
        # of the trace identity, so the plain run gets the same windows
        # via --stream's shard_days).
        streamed = tmp_path / "streamed.jsonl"
        direct = tmp_path / "direct.jsonl"
        base = ["--days", "0.1", "--shard-hours", "1.2", "--rate", "0.2",
                "--seed", "5", "--no-cache"]
        assert main(["synthesize", "--stream", *base, "--out", str(streamed)]) == 0
        assert main(["synthesize", "--stream", *base, "--out", str(direct)]) == 0
        assert streamed.read_bytes() == direct.read_bytes()

    def test_experiment_stream_runs_and_orders_results(self, capsys):
        # Result parity with the in-memory context is pinned in
        # tests/experiments/test_stream_mode.py; here the flag must
        # survive the whole CLI round trip.
        code = main(["experiment", "T2", "F8", "--days", "0.1", "--rate",
                     "0.2", "--seed", "5", "--no-cache", "--stream",
                     "--shard-hours", "1.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.index("T2") < out.index("F8")

    def test_max_rss_exceeded_exits_3(self, capsys):
        code = main(["synthesize", "--stream", "--days", "0.02", "--rate",
                     "0.2", "--seed", "5", "--no-cache", "--max-rss-mb", "1"])
        assert code == 3
        assert "exceeds --max-rss-mb" in capsys.readouterr().err

    def test_max_rss_within_budget_reports_peak(self, capsys):
        code = main(["synthesize", "--stream", "--days", "0.02", "--rate",
                     "0.2", "--seed", "5", "--no-cache",
                     "--max-rss-mb", "100000"])
        assert code == 0
        assert "peak RSS" in capsys.readouterr().out


class TestServeFlags:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0 and args.peers == 2000
        assert args.codec == "columnar" and args.buffer_frames == 16
        assert args.rate is None and args.stamps is False

    def test_serve_flag_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--frames", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--buffer-frames", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--codec", "xml"])

    def test_loadtest_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest"])
        args = build_parser().parse_args(
            ["loadtest", "--port", "9", "--clients", "2"]
        )
        assert args.port == 9 and args.clients == 2


class TestServeCommand:
    """serve in a subprocess, loadtest in-process: the real wire path."""

    def _spawn_server(self, *extra):
        import os
        import re
        import subprocess
        import sys
        from pathlib import Path as _Path

        root = _Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--peers", "60", "--window-seconds", "600",
             "--batch-sessions", "32", "--frames", "4", *extra],
            stdout=subprocess.PIPE, text=True, env=env, cwd=str(root),
        )
        line = proc.stdout.readline()
        match = re.search(r"on 127\.0\.0\.1:(\d+)", line)
        assert match, f"no port line from serve: {line!r}"
        return proc, int(match.group(1))

    def test_serve_then_loadtest_end_to_end(self, tmp_path, capsys):
        proc, port = self._spawn_server("--stamps", "--start-clients", "2")
        try:
            report_path = tmp_path / "report.json"
            code = main(["loadtest", "--port", str(port), "--clients", "2",
                         "--json", str(report_path)])
            out = capsys.readouterr().out
            assert code == 0
            assert "2 client(s):" in out
            assert "report written" in out
            report = json.loads(report_path.read_text())
            assert report["complete_clients"] == 2
            assert report["events_total"] > 0
            assert report["latency"]["samples"] == 2 * 4
            remaining = proc.stdout.read()
            assert proc.wait(timeout=30) == 0
            assert "broadcast complete" in remaining
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_serve_jsonl_codec_end_to_end(self, capsys):
        proc, port = self._spawn_server("--codec", "jsonl")
        try:
            code = main(["loadtest", "--port", str(port), "--clients", "1"])
            out = capsys.readouterr().out
            assert code == 0
            assert "no STAMP probes" in out
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()


class TestGenerateRoundTrip:
    def test_jsonl_and_npz_outputs_describe_the_same_workload(self, tmp_path, capsys):
        # Satellite check for the streamed-JSONL path: the same generate
        # invocation written both ways must round-trip to identical
        # sessions, byte-compared after a canonical re-serialization.
        from repro.core import from_jsonl, from_npz, to_jsonl

        jsonl_out = tmp_path / "workload.jsonl"
        npz_out = tmp_path / "workload.npz"
        base = ["generate", "--peers", "25", "--hours", "0.3", "--seed", "11"]
        assert main([*base, "--out", str(jsonl_out)]) == 0
        assert main([*base, "--out", str(npz_out)]) == 0

        def canonical(sessions, path):
            ordered = sorted(
                sessions, key=lambda s: (s.start, s.region.value, s.duration)
            )
            to_jsonl(ordered, path)
            return path.read_bytes()

        assert canonical(
            from_jsonl(jsonl_out), tmp_path / "a.jsonl"
        ) == canonical(
            list(from_npz(npz_out).iter_sessions()), tmp_path / "b.jsonl"
        )

    def test_jsonl_output_round_trips_through_from_jsonl(self, tmp_path, capsys):
        # The PR-7 gap: the CLI's streamed JSONL used a key from_jsonl
        # rejected, so --out x.jsonl produced a file the library could
        # not read back.  Exercise exactly that read-back.
        from repro.core import from_jsonl

        out = tmp_path / "workload.jsonl"
        assert main(["generate", "--peers", "15", "--hours", "0.2",
                     "--seed", "3", "--out", str(out)]) == 0
        sessions = from_jsonl(out)
        assert sessions
        assert all(s.queries is not None for s in sessions)
