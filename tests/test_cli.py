"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_synthesize_defaults(self):
        args = build_parser().parse_args(["synthesize"])
        assert args.days == 2.0 and args.rate == 0.35

    def test_experiment_ids(self):
        args = build_parser().parse_args(["experiment", "F5", "F6"])
        assert args.ids == ["F5", "F6"]

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "--peers", "50", "--hours", "0.5"])
        assert args.peers == 50 and args.hours == 0.5
        assert args.backend == "columnar" and args.jobs == 1

    def test_generate_backend_and_jobs_flags(self):
        args = build_parser().parse_args(
            ["generate", "--backend", "event", "--jobs", "3"]
        )
        assert args.backend == "event" and args.jobs == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--backend", "scalar"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--jobs", "0"])

    def test_overlay_args(self):
        args = build_parser().parse_args(["overlay", "--peers", "50", "--ttl", "3"])
        assert args.peers == 50 and args.ttl == 3
        assert args.backend == "columnar" and args.delta == 30.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["overlay", "--backend", "scalar"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["overlay", "--jobs", "0"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analysis_jobs_flag(self):
        args = build_parser().parse_args(["experiment", "all", "--analysis-jobs", "4"])
        assert args.analysis_jobs == 4
        assert build_parser().parse_args(["experiment", "T1"]).analysis_jobs == 1

    def test_analysis_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "T1", "--analysis-jobs", "0"])

    def test_cache_format_flag(self):
        args = build_parser().parse_args(["synthesize", "--cache-format", "jsonl"])
        assert args.cache_format == "jsonl"
        assert build_parser().parse_args(["synthesize"]).cache_format == "npz"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synthesize", "--cache-format", "xml"])


class TestCommands:
    def test_synthesize_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["synthesize", "--days", "0.02", "--rate", "0.2",
                     "--seed", "1", "--out", str(out)])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "synthesized" in captured

    def test_experiment_unknown_id(self, capsys):
        code = main(["experiment", "F99", "--days", "0.02", "--rate", "0.1"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_runs(self, capsys):
        code = main(["experiment", "F2", "--days", "0.05", "--rate", "0.2", "--seed", "4"])
        assert code == 0
        assert "F2" in capsys.readouterr().out

    def test_experiment_parallel_jobs(self, tmp_path, capsys):
        code = main(["experiment", "T1", "T2", "--days", "0.05", "--rate", "0.2",
                     "--seed", "4", "--cache-dir", str(tmp_path),
                     "--analysis-jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        # Deterministic order regardless of worker scheduling.
        assert out.index("T1") < out.index("T2")
        # The workers shared one columnar cache entry.
        assert sorted(tmp_path.glob("*.npz"))

    def test_cache_format_jsonl_writes_jsonl_entry(self, tmp_path, capsys):
        code = main(["synthesize", "--days", "0.02", "--rate", "0.2", "--seed", "1",
                     "--cache-dir", str(tmp_path), "--cache-format", "jsonl"])
        assert code == 0
        assert sorted(tmp_path.glob("*.jsonl"))
        assert not sorted(tmp_path.glob("*.npz"))

    def test_generate_writes_workload(self, tmp_path, capsys):
        out = tmp_path / "workload.jsonl"
        code = main(["generate", "--peers", "20", "--hours", "0.2",
                     "--seed", "3", "--out", str(out)])
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines
        record = json.loads(lines[0])
        assert {"region", "start", "duration", "passive", "queries"} <= set(record)

    def test_overlay_backends_agree(self, capsys):
        outputs = []
        for backend in ("columnar", "event"):
            code = main(["overlay", "--peers", "30", "--hours", "0.1",
                         "--seed", "5", "--backend", backend])
            assert code == 0
            out = capsys.readouterr().out
            assert "simulated" in out and "hop-1 captures" in out
            # Strip the backend tag: every number must be identical.
            outputs.append(out.replace(backend, ""))
        assert outputs[0] == outputs[1]

    def test_generate_event_backend_writes_workload(self, tmp_path, capsys):
        out = tmp_path / "workload.jsonl"
        code = main(["generate", "--peers", "10", "--hours", "0.2", "--seed", "3",
                     "--backend", "event", "--out", str(out)])
        assert code == 0
        assert out.read_text().splitlines()

    def test_generate_writes_npz(self, tmp_path, capsys):
        from repro.core import from_npz

        out = tmp_path / "workload.npz"
        code = main(["generate", "--peers", "20", "--hours", "0.2",
                     "--seed", "3", "--jobs", "2", "--out", str(out)])
        assert code == 0
        workload = from_npz(out)
        assert workload.n_sessions > 0
        assert "workload written" in capsys.readouterr().out

    def test_generate_npz_from_event_backend(self, tmp_path, capsys):
        from repro.core import from_npz

        out = tmp_path / "workload.npz"
        code = main(["generate", "--peers", "10", "--hours", "0.2", "--seed", "3",
                     "--backend", "event", "--out", str(out)])
        assert code == 0
        assert from_npz(out).n_sessions > 0


class TestFiguresCommand:
    def test_figures_rendered(self, tmp_path, capsys):
        outdir = tmp_path / "figs"
        code = main(["figures", "--days", "0.05", "--rate", "0.25",
                     "--seed", "9", "--outdir", str(outdir)])
        assert code == 0
        svgs = sorted(outdir.glob("*.svg"))
        assert svgs
        assert "rendered" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_same_trace_is_close(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        assert main(["synthesize", "--days", "0.1", "--rate", "0.3",
                     "--seed", "5", "--out", str(a)]) == 0
        code = main(["compare", str(a), str(a)])
        assert code == 0
        assert "3/3 measures within tolerance" in capsys.readouterr().out

    def test_compare_different_seeds_still_close(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["synthesize", "--days", "0.1", "--rate", "0.3", "--seed", "5", "--out", str(a)])
        main(["synthesize", "--days", "0.1", "--rate", "0.3", "--seed", "6", "--out", str(b)])
        code = main(["compare", str(a), str(b), "--tolerance", "0.15"])
        assert code == 0


class TestStreamFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["synthesize"])
        assert args.stream is False
        assert args.shard_hours == 24.0
        assert args.max_rss_mb is None

    def test_experiment_accepts_stream(self):
        args = build_parser().parse_args(
            ["experiment", "T2", "--stream", "--shard-hours", "6",
             "--max-rss-mb", "512"]
        )
        assert args.stream and args.shard_hours == 6.0
        assert args.max_rss_mb == 512.0


class TestStreamCommands:
    def test_synthesize_stream_reports_shards(self, tmp_path, capsys):
        code = main(["synthesize", "--stream", "--days", "0.1",
                     "--shard-hours", "1.2", "--rate", "0.2", "--seed", "5",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace cache miss" in out
        assert "in 2 shard(s)" in out
        # A second run opens the published sharded entry.
        assert main(["synthesize", "--stream", "--days", "0.1",
                     "--shard-hours", "1.2", "--rate", "0.2", "--seed", "5",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "trace cache hit" in capsys.readouterr().out

    def test_streamed_out_matches_in_memory_synthesis(self, tmp_path, capsys):
        # --out on a streamed run is the explicit opt-out of bounded
        # memory; the concatenated trace must be byte-identical to the
        # single-file path under the same config (shard layout is part
        # of the trace identity, so the plain run gets the same windows
        # via --stream's shard_days).
        streamed = tmp_path / "streamed.jsonl"
        direct = tmp_path / "direct.jsonl"
        base = ["--days", "0.1", "--shard-hours", "1.2", "--rate", "0.2",
                "--seed", "5", "--no-cache"]
        assert main(["synthesize", "--stream", *base, "--out", str(streamed)]) == 0
        assert main(["synthesize", "--stream", *base, "--out", str(direct)]) == 0
        assert streamed.read_bytes() == direct.read_bytes()

    def test_experiment_stream_runs_and_orders_results(self, capsys):
        # Result parity with the in-memory context is pinned in
        # tests/experiments/test_stream_mode.py; here the flag must
        # survive the whole CLI round trip.
        code = main(["experiment", "T2", "F8", "--days", "0.1", "--rate",
                     "0.2", "--seed", "5", "--no-cache", "--stream",
                     "--shard-hours", "1.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.index("T2") < out.index("F8")

    def test_max_rss_exceeded_exits_3(self, capsys):
        code = main(["synthesize", "--stream", "--days", "0.02", "--rate",
                     "0.2", "--seed", "5", "--no-cache", "--max-rss-mb", "1"])
        assert code == 3
        assert "exceeds --max-rss-mb" in capsys.readouterr().err

    def test_max_rss_within_budget_reports_peak(self, capsys):
        code = main(["synthesize", "--stream", "--days", "0.02", "--rate",
                     "0.2", "--seed", "5", "--no-cache",
                     "--max-rss-mb", "100000"])
        assert code == 0
        assert "peak RSS" in capsys.readouterr().out
