"""Kernel-layer battery: reference semantics, backend equivalence, goldens.

Three layers of defense for the ``repro.core.kernels`` contract:

* hypothesis property tests pin each kernel to its naive per-segment
  reference (including 0-row and single-row segments);
* the backend equivalence battery proves every registered backend
  byte-identical to the NumPy reference on the same inputs -- the
  invariant a numba/GPU drop-in must keep;
* a golden test pins the categorical cutpoint table to the exact
  ``searchsorted(cdf, u, side='left')`` draws it replaces, so a table
  rebuild can never silently shift a sampled index.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    CategoricalTable,
    CategoricalTableStack,
    available_backends,
    distribution_sample_n,
    get_backend,
    group_slices,
    isin_sorted,
    load_npz_members,
    merge_unique,
    pool_map,
    resolve_workers,
    save_npz_payload,
    searchsorted_left,
    segment_ids,
    segmented_arange,
    segmented_cumsum,
    setdiff_sorted,
    shard_sizes,
    sorted_lookup,
    spawn_shard_streams,
    use_backend,
)

counts_arrays = st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=12).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)


def naive_segmented_arange(counts):
    return np.concatenate([np.arange(c, dtype=np.int64) for c in counts] or [np.zeros(0, np.int64)])


# -- reference semantics (property tests) --------------------------------


@given(counts=counts_arrays)
@settings(max_examples=50)
def test_segmented_arange_matches_naive(counts):
    got = segmented_arange(counts)
    expected = naive_segmented_arange(counts)
    assert got.dtype == np.int64
    assert np.array_equal(got, expected)


@given(counts=counts_arrays, data=st.data())
@settings(max_examples=50)
def test_segmented_cumsum_matches_per_segment(counts, data):
    # Integer-valued floats make every partial sum exact, so the
    # kernel's running-sum-difference evaluation and the naive
    # per-segment cumsum must agree to the bit.  (For arbitrary floats
    # the kernel's documented contract is its own fixed summation
    # order, which the engine goldens pin instead.)
    total = int(counts.sum())
    values = np.asarray(
        data.draw(st.lists(st.integers(-1000, 1000), min_size=total, max_size=total)),
        dtype=np.float64,
    )
    got = segmented_cumsum(values, counts)
    pieces, pos = [], 0
    for c in counts:
        pieces.append(np.cumsum(values[pos:pos + c]))
        pos += int(c)
    expected = np.concatenate(pieces or [np.zeros(0)])
    assert np.array_equal(got, expected)


@given(counts=counts_arrays)
@settings(max_examples=50)
def test_segment_ids_matches_repeat(counts):
    got = segment_ids(counts)
    expected = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    assert np.array_equal(got, expected)


@given(codes=st.lists(st.integers(-5, 5), min_size=0, max_size=40).map(np.asarray))
@settings(max_examples=50)
def test_group_slices_partitions_stably(codes):
    order, keys, bounds = group_slices(codes)
    assert np.array_equal(keys, np.unique(codes))
    assert bounds[0] == 0 and bounds[-1] == codes.size
    seen = []
    for g in range(keys.size):
        idx = order[bounds[g]:bounds[g + 1]]
        # Every slice holds exactly its key's rows, in original order.
        assert np.array_equal(np.sort(idx), idx)
        assert (np.asarray(codes)[idx] == keys[g]).all()
        seen.append(idx)
    if seen:
        assert np.array_equal(np.sort(np.concatenate(seen)), np.arange(codes.size))


@given(
    counts=st.lists(st.integers(min_value=1, max_value=7), min_size=0, max_size=12).map(
        lambda xs: np.asarray(xs, dtype=np.int64)
    ),
    data=st.data(),
)
@settings(max_examples=30)
def test_segmented_offsets_forms_match_their_loops(counts, data):
    # One `first` entry per (non-empty) segment -- the engines filter
    # to sessions that emit at least one query before calling these.
    n = counts.size
    total = int(counts.sum())
    n_gaps = int(np.maximum(counts - 1, 0).sum())
    first = np.asarray(
        data.draw(st.lists(st.integers(0, 1000), min_size=n, max_size=n)), dtype=np.float64
    )
    gaps = np.asarray(
        data.draw(st.lists(st.integers(0, 10), min_size=n_gaps, max_size=n_gaps)),
        dtype=np.float64,
    )
    backend = get_backend("numpy")
    scatter = backend.segmented_offsets_scatter(first, gaps, counts)
    base = backend.segmented_offsets_base(first, gaps, counts)
    pos = 0
    gpos = 0
    exp_scatter, exp_base = np.empty(total), np.empty(total)
    for i, c in enumerate(counts):
        seg_gaps = gaps[gpos:gpos + max(int(c) - 1, 0)]
        gpos += max(int(c) - 1, 0)
        if c:
            exp_scatter[pos:pos + c] = np.cumsum(np.concatenate([[first[i]], seg_gaps]))
            exp_base[pos:pos + c] = first[i] + np.cumsum(np.concatenate([[0.0], seg_gaps]))
        pos += int(c)
    assert np.array_equal(scatter, exp_scatter)
    assert np.array_equal(base, exp_base)


cdf_arrays = st.lists(
    st.floats(min_value=1e-6, max_value=1.0), min_size=1, max_size=30
).map(lambda ws: np.cumsum(np.asarray(ws) / np.sum(ws)))


@given(cdf=cdf_arrays, data=st.data())
@settings(max_examples=50)
def test_categorical_table_matches_searchsorted(cdf, data):
    cdf[-1] = 1.0
    n = data.draw(st.integers(0, 64))
    u = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1))).random(n)
    table = CategoricalTable(cdf)
    assert np.array_equal(table.lookup(u), searchsorted_left(cdf, u))


@given(data=st.data())
@settings(max_examples=30)
def test_categorical_stack_matches_broadcast_compare(data):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    n_rows = data.draw(st.integers(1, 5))
    n_cats = data.draw(st.integers(1, 8))
    weights = rng.random((n_rows, n_cats)) + 1e-6
    cum = np.cumsum(weights / weights.sum(axis=1, keepdims=True), axis=1)
    cum[:, -1] = 1.0
    stack = CategoricalTableStack(cum)
    n = data.draw(st.integers(0, 64))
    rows = rng.integers(0, n_rows, size=n)
    u = rng.random(n)
    got = stack.lookup(rows, u)
    expected = (u[:, None] > cum[rows]).sum(axis=1)
    assert np.array_equal(got, expected)


# -- sorted-set membership kernels ---------------------------------------


sorted_unique_arrays = st.lists(
    st.integers(-50, 50), min_size=0, max_size=30
).map(lambda xs: np.unique(np.asarray(xs, dtype=np.int64)))

value_arrays = st.lists(st.integers(-60, 60), min_size=0, max_size=40).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)


@given(haystack=sorted_unique_arrays, values=value_arrays)
@settings(max_examples=50)
def test_sorted_lookup_matches_python_sets(haystack, values):
    mask, idx = sorted_lookup(haystack, values)
    pool = set(haystack.tolist())
    assert np.array_equal(mask, np.asarray([v in pool for v in values.tolist()], bool))
    assert np.array_equal(isin_sorted(haystack, values), mask)
    # Positions are exact wherever the mask says "present".
    if mask.any():
        assert np.array_equal(haystack[idx[mask]], values[mask])


@given(a=sorted_unique_arrays, b=sorted_unique_arrays)
@settings(max_examples=50)
def test_merge_and_diff_match_python_sets(a, b):
    union = merge_unique(a, b)
    assert np.array_equal(union, np.asarray(sorted(set(a) | set(b)), dtype=np.int64))
    diff = setdiff_sorted(a, b)
    assert np.array_equal(diff, np.asarray(sorted(set(a) - set(b)), dtype=np.int64))
    # Outputs keep the sorted-unique invariant the inputs carried.
    assert (np.diff(union) > 0).all()
    assert (np.diff(diff) > 0).all()


# -- golden: the table is pinned to exact searchsorted draws -------------


def test_categorical_table_golden_draws():
    cdf = np.array([0.125, 0.25, 0.5, 0.8125, 0.9375, 1.0])
    u = np.array([0.0, 0.1249, 0.125, 0.2501, 0.5, 0.64, 0.8125, 0.99, 0.9375])
    table = CategoricalTable(cdf)
    assert not table.uses_fallback
    expected = np.searchsorted(cdf, u, side="left")
    assert np.array_equal(table.lookup(u), expected)
    assert np.array_equal(table.lookup(u), [0, 0, 0, 2, 2, 3, 3, 5, 4])


def test_categorical_table_dense_cdf_falls_back():
    # Adjacent CDF values closer than the bucket cap cannot be
    # separated; the table must detect this and delegate.
    base = np.linspace(0.0, 1e-7, 64)
    cdf = np.concatenate([base, [1.0]])
    table = CategoricalTable(cdf)
    assert table.uses_fallback
    u = np.random.default_rng(7).random(100)
    assert np.array_equal(table.lookup(u), np.searchsorted(cdf, u, side="left"))


# -- backend equivalence battery -----------------------------------------


def _kernel_payload():
    rng = np.random.default_rng(20040315)
    counts = rng.integers(1, 6, size=50).astype(np.int64)
    total = int(counts.sum())
    values = rng.random(total)
    first = rng.random(counts.size) * 100
    gaps = rng.random(int(np.maximum(counts - 1, 0).sum()))
    codes = rng.integers(-3, 4, size=80)
    cdf = np.cumsum(rng.random(9))
    cdf /= cdf[-1]
    cdf[-1] = 1.0
    u = rng.random(70)
    haystack = np.unique(rng.integers(0, 500, size=60))
    probes = rng.integers(0, 600, size=90)
    return counts, values, first, gaps, codes, cdf, u, haystack, probes


def test_every_backend_is_byte_identical_to_numpy():
    counts, values, first, gaps, codes, cdf, u, haystack, probes = _kernel_payload()
    reference = get_backend("numpy")
    table = CategoricalTable(cdf)
    expected = {
        "arange": reference.segmented_arange(counts),
        "cumsum": reference.segmented_cumsum(values, counts),
        "ids": reference.segment_ids(counts),
        "scatter": reference.segmented_offsets_scatter(first, gaps, counts),
        "base": reference.segmented_offsets_base(first, gaps, counts),
        "lookup": table.lookup(u),
        "member": reference.sorted_lookup(haystack, probes)[0],
        "member_idx": reference.sorted_lookup(haystack, probes)[1],
        "union": reference.merge_unique(haystack, np.unique(probes)),
        "diff": reference.setdiff_sorted(haystack, np.unique(probes)),
    }
    assert "stub" in available_backends()
    for name in available_backends():
        backend = get_backend(name)
        with use_backend(name):
            got = {
                "arange": backend.segmented_arange(counts),
                "cumsum": backend.segmented_cumsum(values, counts),
                "ids": backend.segment_ids(counts),
                "scatter": backend.segmented_offsets_scatter(first, gaps, counts),
                "base": backend.segmented_offsets_base(first, gaps, counts),
                "lookup": table.lookup(u),
                "member": backend.sorted_lookup(haystack, probes)[0],
                "member_idx": backend.sorted_lookup(haystack, probes)[1],
                "union": backend.merge_unique(haystack, np.unique(probes)),
                "diff": backend.setdiff_sorted(haystack, np.unique(probes)),
            }
        for key, arr in expected.items():
            assert got[key].dtype == arr.dtype, (name, key)
            assert got[key].tobytes() == arr.tobytes(), (name, key)


def test_use_backend_scopes_and_keeps_results_identical():
    counts = np.array([0, 1, 3, 0, 2], dtype=np.int64)
    reference = segmented_arange(counts)
    with use_backend("stub") as active:
        assert active.name == "stub"
        assert np.array_equal(segmented_arange(counts), reference)
    # The context restored whatever was active before.
    assert np.array_equal(segmented_arange(counts), reference)


def test_distribution_sample_n_matches_scalar_loop():
    from repro.core.distributions import Lognormal

    dist = Lognormal(mu=1.0, sigma=0.5)
    rng_a = np.random.default_rng(11)
    rng_b = np.random.default_rng(11)
    batch = distribution_sample_n(dist, rng_a, 40)
    scalars = np.asarray(dist.sample(rng_b, size=40), dtype=np.float64)
    assert np.array_equal(batch, scalars)


# -- shard planning / pool fan-out ---------------------------------------


def test_shard_sizes_is_a_fixed_near_equal_plan():
    assert shard_sizes(10, 4) == [3, 3, 2, 2]
    assert shard_sizes(8, 4) == [2, 2, 2, 2]
    assert shard_sizes(3, 4) == [1, 1, 1, 0]
    assert sum(shard_sizes(12345, 7)) == 12345


def test_spawn_shard_streams_is_layout_stable():
    a = spawn_shard_streams(7, 5, 2)
    b = spawn_shard_streams(7, 5, 2)
    ra = [np.random.default_rng(s).random(4) for s in (a if isinstance(a, list) else [a])]
    rb = [np.random.default_rng(s).random(4) for s in (b if isinstance(b, list) else [b])]
    for x, y in zip(ra, rb):
        assert np.array_equal(x, y)
    # A different shard index yields an independent stream.
    other = spawn_shard_streams(7, 5, 3)
    ro = [np.random.default_rng(s).random(4) for s in (other if isinstance(other, list) else [other])]
    assert not np.array_equal(ra[0], ro[0])


def _square(x):
    return x * x


def test_pool_map_is_worker_count_invariant():
    items = list(range(20))
    expected = [x * x for x in items]
    assert pool_map(_square, items, 1) == expected
    assert pool_map(_square, items, 2) == expected


def test_resolve_workers_clamps_to_tasks_and_cpus():
    assert resolve_workers(8, 3) <= 3
    assert resolve_workers(1, 100) == 1
    assert resolve_workers(4, 0) == 0


# -- npz round trip ------------------------------------------------------


@pytest.mark.parametrize("mmap_mode", [None, "r"])
def test_npz_round_trip_preserves_bytes(tmp_path, mmap_mode):
    payload = {
        "ints": np.arange(10, dtype=np.int64),
        "floats": np.linspace(0, 1, 7),
        "strings": np.array(["alpha", "beta", ""], dtype="U5"),
        "empty": np.zeros(0, dtype=np.float64),
    }
    path = tmp_path / "roundtrip.npz"
    save_npz_payload(path, payload)
    members = load_npz_members(path, mmap_mode)
    assert set(members) == set(payload)
    for name, arr in payload.items():
        got = members[name]
        assert got.dtype == arr.dtype
        assert got.shape == arr.shape
        assert np.asarray(got).tobytes() == arr.tobytes()
