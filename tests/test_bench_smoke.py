"""Tier-1 smoke run of the substrate benchmark path.

Runs the same measurement code as ``benchmarks/bench_substrate.py`` at
smoke scale (days=0.05, seconds of wall time) so every test run
exercises sequential synthesis, sharded synthesis, and the trace cache
end to end, and emits ``BENCH_substrate.json`` at the repo root as a
machine-readable record of the observed throughput.
"""

import json
from pathlib import Path

from repro.synthesis.bench import measure_substrate, write_bench_report

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"


def test_substrate_smoke_benchmark(tmp_path):
    report = measure_substrate(days=0.05, jobs=(1, 2), cache_dir=tmp_path / "cache")
    runs = report["runs"]

    assert set(runs) == {"sequential", "sharded_jobs2", "cache_cold", "cache_warm"}
    for label, run in runs.items():
        assert run["connections"] > 100, label
        assert run["seconds"] > 0, label

    # Same process, same scale: the realizations differ per shard count
    # but the volume must not.
    seq, sharded = runs["sequential"], runs["sharded_jobs2"]
    assert abs(sharded["connections"] - seq["connections"]) / seq["connections"] < 0.25

    # The warm cache must never be slower than synthesizing from scratch.
    assert runs["cache_warm"]["seconds"] <= runs["cache_cold"]["seconds"]
    assert runs["cache_warm"]["connections"] == runs["cache_cold"]["connections"]

    path = write_bench_report(report, REPORT_PATH)
    parsed = json.loads(path.read_text())
    assert parsed["scale"]["days"] == 0.05
    assert parsed["runs"]["sequential"]["connections_per_second"] > 0
