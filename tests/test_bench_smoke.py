"""Tier-1 smoke runs of the benchmark measurement paths.

Runs the same measurement code as ``benchmarks/bench_substrate.py`` and
``benchmarks/bench_analysis.py`` at smoke scale (days=0.05, seconds of
wall time) so every test run exercises sequential synthesis, sharded
synthesis, the trace cache, the columnar filter/analysis path, and the
report emission end to end.  The reports are written under ``tmp_path``
-- the repo-root ``BENCH_*.json`` files are bench-scale records produced
by the benchmark suite, and a smoke-scale run must not clobber them.
"""

import json

from repro.analysis.bench import measure_analysis
from repro.core.generator_bench import measure_generator
from repro.synthesis.bench import measure_substrate, write_bench_report


def test_substrate_smoke_benchmark(tmp_path):
    report = measure_substrate(days=0.05, jobs=(1, 2), cache_dir=tmp_path / "cache")
    runs = report["runs"]

    assert set(runs) == {
        "sequential", "sharded_jobs2", "synth_columnar", "cache_cold", "cache_warm",
    }
    for label, run in runs.items():
        assert run["connections"] > 100, label
        assert run["seconds"] > 0, label
        assert run["days"] == 0.05, label

    # Same process, same scale: the realizations differ per shard count
    # (and per backend) but the volume must not.
    seq, sharded = runs["sequential"], runs["sharded_jobs2"]
    assert abs(sharded["connections"] - seq["connections"]) / seq["connections"] < 0.25
    columnar = runs["synth_columnar"]
    assert abs(columnar["connections"] - seq["connections"]) / seq["connections"] < 0.25

    # The fast path is only a fast path if it keeps the distributions:
    # every KS/equivalence check against the event reference must hold.
    assert "speedup_vs_sequential" in columnar
    assert report["ks_checks"]["ok"] is True, report["ks_checks"]

    # The warm cache must never be slower than synthesizing from scratch.
    assert runs["cache_warm"]["seconds"] <= runs["cache_cold"]["seconds"]
    assert runs["cache_warm"]["connections"] == runs["cache_cold"]["connections"]

    path = write_bench_report(report, tmp_path / "BENCH_substrate.json")
    parsed = json.loads(path.read_text())
    assert parsed["scale"]["days"] == 0.05
    assert parsed["runs"]["sequential"]["connections_per_second"] > 0


def test_analysis_smoke_benchmark(tmp_path):
    # run_all_jobs=() keeps the smoke run to seconds; the experiment
    # fan-out has its own coverage in tests/experiments/.
    report = measure_analysis(days=0.05, run_all_jobs=(), cache_dir=tmp_path / "cache")
    runs = report["runs"]

    assert set(runs) == {
        "trace_load_jsonl", "trace_load_npz",
        "filter_analysis_loop", "filter_analysis_columnar",
    }
    for label, run in runs.items():
        assert run["seconds"] > 0, label

    # measure_analysis itself asserts Table 2 equality; re-check the
    # recorded outcome and that the report carries the actual counts.
    assert report["table2_identical"] is True
    assert report["table2"]["initial_queries"] > 0
    assert report["table2"]["final_sessions"] > 0
    assert report["host"]["cpu_count"] >= 1

    assert "speedup_vs_trace_load_jsonl" in runs["trace_load_npz"]
    assert "speedup_vs_filter_analysis_loop" in runs["filter_analysis_columnar"]

    path = write_bench_report(report, tmp_path / "BENCH_analysis.json")
    parsed = json.loads(path.read_text())
    assert parsed["scale"]["days"] == 0.05


def test_generator_smoke_benchmark(tmp_path):
    report = measure_generator(
        n_peers=(50, 400), hours=0.25, seed=11, jobs=2,
        ks_n_peers=150, ks_hours=4.0,
    )
    runs = report["runs"]

    assert set(runs) == {"event_n50", "columnar_n50", "event_n400", "columnar_n400"}
    for label, run in runs.items():
        assert run["sessions"] > 10, label
        assert run["seconds"] > 0, label
        assert run["hours"] == 0.25, label

    # Same scale, different realizations: volumes must agree broadly.
    for n in (50, 400):
        event, columnar = runs[f"event_n{n}"], runs[f"columnar_n{n}"]
        diff = abs(columnar["sessions"] - event["sessions"]) / event["sessions"]
        assert diff < 0.35, (n, event["sessions"], columnar["sessions"])
        assert "speedup_vs_event" in columnar

    # The fast path is only a fast path if it keeps the distributions
    # and the output is worker-count-independent.
    assert report["jobs_identical"] is True
    assert report["ks_checks"]["ok"] is True, report["ks_checks"]

    path = write_bench_report(report, tmp_path / "BENCH_generator.json")
    parsed = json.loads(path.read_text())
    assert parsed["scale"]["hours"] == 0.25
    assert parsed["runs"]["columnar_n400"]["sessions_per_second"] > 0


def test_paper_scale_smoke_benchmark(tmp_path):
    from repro.analysis.paper_scale import DEFAULT_RSS_BUDGET_MB, measure_paper_scale

    report = measure_paper_scale(
        days=0.2, shard_hours=1.2, equivalence_days=0.1,
        workdir=tmp_path / "shards",
    )
    runs = report["runs"]
    assert set(runs) == {"synthesize_stream", "filter_analyze_stream"}
    synth = runs["synthesize_stream"]
    assert synth["connections"] > 100
    assert synth["n_shards"] == 4
    assert synth["shard_bytes_on_disk"] > 0

    # The 40-day benchmark's own acceptance checks, at smoke scale.
    assert report["equivalence"]["all_identical"] is True, report["equivalence"]
    assert report["budget"]["rss_budget_mb"] == DEFAULT_RSS_BUDGET_MB
    assert report["budget"]["within_budget"] is True
    assert report["host"]["peak_rss_mb"] > 0
    assert report["table2"]["final_sessions"] > 0

    path = write_bench_report(report, tmp_path / "BENCH_paper_scale.json")
    parsed = json.loads(path.read_text())
    assert parsed["scale"]["days"] == 0.2
    assert parsed["budget"]["peak_rss_mb"] > 0
