"""Row-level semantics of each experiment (columns, units, bands)."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def results(context):
    """Run the full registry once against the shared trace."""
    from repro.experiments import ALL_EXPERIMENTS

    return {eid: run_experiment(eid, context) for eid in ALL_EXPERIMENTS}


class TestTableRows:
    def test_t1_rows_have_per_connection_ratios(self, results):
        rows = {r["measure"]: r for r in results["T1"].rows}
        assert set(rows) == {
            "query_messages", "queryhit_messages", "ping_messages",
            "pong_messages", "direct_connections", "hop1_query_messages",
        }
        assert rows["direct_connections"]["ours_per_conn"] == 1.0
        assert rows["query_messages"]["ours_per_conn"] > rows["hop1_query_messages"]["ours_per_conn"]

    def test_t2_fraction_columns(self, results):
        for row in results["T2"].rows:
            assert 0.0 <= row["ours_frac"] <= 1.0
            assert 0.0 <= row["paper_frac"] <= 1.0

    def test_t2_rule_fractions_near_paper(self, results):
        rows = {r["measure"]: r for r in results["T2"].rows}
        assert rows["rule3_removed_sessions"]["ours_frac"] == pytest.approx(0.70, abs=0.04)
        assert rows["rule1_removed_queries"]["ours_frac"] == pytest.approx(
            rows["rule1_removed_queries"]["paper_frac"], abs=0.08
        )

    def test_t3_class_ordering(self, results):
        rows = [r for r in results["T3"].rows if r["period_days"] == 1]
        by_class = {r["query_class"]: r["ours"] for r in rows}
        assert by_class["na_only"] > by_class["as_only"] > by_class["na_eu"]
        assert by_class["all_three"] <= by_class["na_eu"]


class TestFigureRows:
    def test_f1_fractions_sum_below_one(self, results):
        for row in results["F1"].rows:
            assert 0.0 <= row["ours_one_hop"] <= 1.0
            assert abs(row["ours_one_hop"] - row["paper"]) < 0.12

    def test_f2_divergence_small(self, results):
        divergence = next(
            r for r in results["F2"].rows if r["shared_files"] == "max divergence"
        )
        assert divergence["ours_one_hop"] < 0.05

    def test_f3_has_all_periods(self, results):
        periods = {r["period"] for r in results["F3"].rows}
        assert periods == {"03:00-04:00", "11:00-12:00", "13:00-14:00", "19:00-20:00"}

    def test_f4_bands(self, results):
        for row in results["F4"].rows:
            assert 0.70 <= row["ours_average"] <= 0.92

    def test_f5_regional_rows_match_anchors(self, results):
        regional = [r for r in results["F5"].rows if "paper_gt_2min" in r]
        for row in regional:
            assert row["ours_gt_2min"] == pytest.approx(row["paper_gt_2min"], abs=0.12)

    def test_f6_asia_most_single_query(self, results):
        rows = {r["region"]: r for r in results["F6"].rows}
        assert rows["AS"]["ours_lt5"] > rows["EU"]["ours_lt5"]

    def test_f8_regional_anchors(self, results):
        regional = [r for r in results["F8"].rows if r["region"] in ("NA", "EU", "AS")]
        for row in regional:
            assert row["ours_lt100"] == pytest.approx(row["paper_lt100"], abs=0.12)

    def test_f9_asia_fastest(self, results):
        rows = {r["region"]: r for r in results["F9"].rows if r["region"] in ("NA", "EU", "AS")}
        assert rows["AS"]["ours_gt1000"] < rows["NA"]["ours_gt1000"]

    def test_f10_ground_truth_rows_present(self, results):
        sources = {r["source"] for r in results["F10"].rows}
        assert "ground truth" in sources

    def test_f11_alphas_positive_and_small(self, results):
        for row in results["F11"].rows:
            if row["query_class"] in ("na_only", "eu_only"):
                assert 0.0 < row["ours_alpha"] < 0.8  # far below unfiltered ~1.0


class TestFitRows:
    def test_ta1_tail_parameters_comparable(self, results):
        tails = [r for r in results["TA1"].rows if r["part"] == "tail"]
        for row in tails:
            assert row["ours_mu"] == pytest.approx(row["paper_mu"], abs=1.2)
            assert row["ours_sigma"] == pytest.approx(row["paper_sigma"], abs=1.0)

    def test_ta1_body_weights(self, results):
        weights = {r["period"]: r["ours_sigma"] for r in results["TA1"].rows
                   if r["part"] == "body weight"}
        assert weights["peak"] == pytest.approx(0.75, abs=0.05)
        assert weights["non-peak"] == pytest.approx(0.55, abs=0.07)

    def test_ta2_eu_mu_positive_na_near_zero(self, results):
        rows = {r["region"]: r for r in results["TA2"].rows}
        assert rows["EU"]["ours_mu"] > rows["NA"]["ours_mu"]
        assert rows["NA"]["ours_mu"] == pytest.approx(-0.067, abs=0.4)

    def test_ta4_pareto_alpha_close(self, results):
        for row in results["TA4"].rows:
            assert row["ours_pareto_alpha"] == pytest.approx(
                row["paper_pareto_alpha"], abs=0.25
            )

    def test_ta5_mu_ordering_with_queries(self, results):
        peak = {r["n_queries"]: r["ours_mu"] for r in results["TA5"].rows
                if r["period"] == "peak"}
        if {"1", ">7"} <= set(peak):
            assert peak[">7"] > peak["1"]

    def test_fa1_fits_tight(self, results):
        for row in results["FA1"].rows:
            assert row["ks"] < 0.12


class TestExtensionRows:
    def test_x1_sha1_lowest_hit_rate(self, results):
        rows = {r["measure"]: r for r in results["X1"].rows}
        assert rows["raw SHA1 source searches"]["hit_rate"] < rows["raw keyword queries"]["hit_rate"]

    def test_x2_median_size_band(self, results):
        rows = {r["measure"]: r for r in results["X2"].rows}
        assert 2.0 < rows["median size (MB)"]["value"] < 7.0

    def test_x3_caching_claim(self, results):
        for row in results["X3"].rows:
            assert row["raw_stream_hit_rate"] > row["user_stream_hit_rate"]

    def test_x4_balance_near_one(self, results):
        rows = {r["measure"]: r for r in results["X4"].rows}
        assert 1.0 <= rows["arrivals/departures balance"]["value"] < 1.1
