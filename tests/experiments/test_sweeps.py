"""Tests for the sensitivity sweeps."""

import pytest

from repro.experiments.sweeps import (
    sweep_arrival_rate,
    sweep_persistence,
    sweep_requery_interval,
)


class TestPersistenceSweep:
    def test_retention_monotone_in_rho(self):
        rows = sweep_persistence(rhos=(0.0, 0.55, 0.9), days=15, seed=2)
        retained = [row["mean_retained"] for row in rows]
        assert retained == sorted(retained)

    def test_default_rho_hits_paper_band(self):
        rows = sweep_persistence(rhos=(0.55,), days=30, seed=3)
        assert 0.5 <= rows[0]["frac_days_le4"] <= 0.95

    def test_row_schema(self):
        rows = sweep_persistence(rhos=(0.3,), days=5, seed=1)
        assert set(rows[0]) == {"rho", "mean_retained", "frac_days_le4"}


class TestRequeryIntervalSweep:
    def test_shorter_interval_more_duplicates(self):
        rows = sweep_requery_interval(scale_factors=(0.5, 2.0), days=0.1, rate=0.3, seed=4)
        assert rows[0]["rule2_fraction"] > rows[1]["rule2_fraction"]

    def test_fractions_are_probabilities(self):
        rows = sweep_requery_interval(scale_factors=(1.0,), days=0.08, rate=0.3, seed=5)
        assert 0.0 <= rows[0]["rule2_fraction"] <= 1.0


class TestArrivalRateSweep:
    def test_scale_invariance_of_passive_fraction(self):
        rows = sweep_arrival_rate(rates=(0.15, 0.4), days=0.4, seed=6)
        passives = [row["passive_fraction"] for row in rows]
        assert max(passives) - min(passives) < 0.06

    def test_sessions_scale_with_rate(self):
        rows = sweep_arrival_rate(rates=(0.15, 0.45), days=0.2, seed=7)
        assert rows[1]["sessions"] == pytest.approx(3 * rows[0]["sessions"], rel=0.15)
