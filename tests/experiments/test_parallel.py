"""The process-pool experiment fan-out must be invisible in the results.

``run_many(..., jobs=N)`` has one contract: same results, same order,
as the sequential path -- worker scheduling must never leak into
output.  These run at tiny scale; the performance story is the
benchmark suite's job.
"""

import pytest

from repro.experiments import ExperimentContext, run_many
from repro.experiments import registry
from repro.experiments.registry import effective_run_jobs
from repro.synthesis import SynthesisConfig, TraceCache

CFG = SynthesisConfig(days=0.05, mean_arrival_rate=0.3, seed=20040315)

#: A cross-section of experiment families (tables, geography, active,
#: popularity, generator) -- enough to exercise distinct context views
#: in the workers without running all 26 at test scale.
IDS = ["T1", "T2", "F1", "F6", "F10", "G1"]


def _rows(results):
    return [(r.experiment_id, r.rows, r.notes) for r in results]


class TestParallelParity:
    def test_jobs2_matches_sequential_with_cache(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        sequential = run_many(IDS, ExperimentContext(CFG, cache=cache))
        parallel = run_many(IDS, ExperimentContext(CFG, cache=cache), jobs=2)
        assert [r.experiment_id for r in parallel] == IDS
        assert _rows(parallel) == _rows(sequential)

    def test_jobs2_matches_sequential_without_cache(self):
        # A cache-less context gets a private temp cache for the workers.
        sequential = run_many(IDS, ExperimentContext(CFG))
        parallel = run_many(IDS, ExperimentContext(CFG), jobs=2)
        assert _rows(parallel) == _rows(sequential)

    def test_more_jobs_than_experiments(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        results = run_many(["T1", "T2"], ExperimentContext(CFG, cache=cache), jobs=8)
        assert [r.experiment_id for r in results] == ["T1", "T2"]


class TestRunManyValidation:
    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="NOPE"):
            run_many(["T1", "NOPE"], ExperimentContext(CFG))

    def test_jobs_one_stays_in_process(self, tmp_path):
        # jobs=1 must not pay pool overhead: the trace is synthesized in
        # this process and no cache entry is required.
        ctx = ExperimentContext(CFG)
        results = run_many(["T1"], ctx, jobs=1)
        assert results[0].experiment_id == "T1"
        assert "trace" in ctx.__dict__  # computed here, not in a worker


class TestEffectiveJobs:
    """Requested workers are capped at tasks and CPUs (regression: a
    jobs=8 run on a 1-2 core host used to fork 8 workers and lose to
    the sequential path on pool overhead alone)."""

    def test_caps_at_task_count(self, monkeypatch):
        monkeypatch.setattr(registry, "available_cpus", lambda: 64)
        assert effective_run_jobs(8, 2) == 2

    def test_caps_at_available_cpus(self, monkeypatch):
        monkeypatch.setattr(registry, "available_cpus", lambda: 2)
        assert effective_run_jobs(8, 26) == 2

    def test_single_cpu_falls_back_to_sequential(self, monkeypatch):
        monkeypatch.setattr(registry, "available_cpus", lambda: 1)
        assert effective_run_jobs(8, 26) == 1

    def test_none_means_sequential(self):
        assert effective_run_jobs(None, 26) == 1

    def test_single_cpu_run_many_never_forks(self, monkeypatch):
        monkeypatch.setattr(registry, "available_cpus", lambda: 1)

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("pool must not be used on a 1-CPU host")

        monkeypatch.setattr(registry, "_run_parallel", boom)
        ctx = ExperimentContext(CFG)
        results = run_many(["T1", "T2"], ctx, jobs=8)
        assert [r.experiment_id for r in results] == ["T1", "T2"]

    def test_pool_path_parity(self, tmp_path, monkeypatch):
        # Exercise the process-pool path directly so its parity holds
        # even when the host CPU cap would route around it.
        cache = TraceCache(tmp_path / "cache")
        sequential = run_many(IDS, ExperimentContext(CFG, cache=cache))
        pooled = registry._run_parallel(
            list(IDS), ExperimentContext(CFG, cache=cache), 2
        )
        assert _rows(pooled) == _rows(sequential)
