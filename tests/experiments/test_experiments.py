"""Tests for the per-figure experiment drivers (shared small context)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, ExperimentContext, run_all, run_experiment
from repro.experiments.base import ExperimentResult, format_rows


class TestRegistry:
    def test_all_design_ids_present(self):
        expected = {
            "T1", "T2", "T3",
            "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11",
            "TA1", "TA2", "TA3", "TA4", "TA5", "FA1", "G1", "X1", "X2", "X3", "X4", "C1",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_unknown_id_rejected(self, context):
        with pytest.raises(KeyError):
            run_experiment("F99", context)


class TestResultRendering:
    def test_format_rows_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22.5, "c": 3}]
        text = format_rows(rows)
        assert "a" in text and "b" in text and "c" in text
        assert "22.5" in text

    def test_empty_rows(self):
        assert "no rows" in format_rows([])

    def test_render_includes_notes(self):
        result = ExperimentResult("X", "Test")
        result.add(a=1)
        result.note("hello")
        text = result.render()
        assert "== X: Test ==" in text and "note: hello" in text


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_experiment_produces_rows(experiment_id, context):
    result = run_experiment(experiment_id, context)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.rows, f"{experiment_id} produced no rows"
    assert result.render()


class TestKeyShapeResults:
    """The paper's headline qualitative findings must hold on the shared
    synthesized trace."""

    def test_t2_filters_remove_majority(self, context):
        result = run_experiment("T2", context)
        rows = {r["measure"]: r for r in result.rows}
        assert rows["final_queries"]["ours_frac"] < 0.5

    def test_f4_passive_band(self, context):
        result = run_experiment("F4", context)
        for row in result.rows:
            assert 0.70 <= row["ours_average"] <= 0.92

    def test_f6_ordering_note(self, context):
        result = run_experiment("F6", context)
        assert any("OK" in n for n in result.notes)

    def test_f11_alpha_ordering(self, context):
        result = run_experiment("F11", context)
        rows = {r["query_class"]: r for r in result.rows}
        assert rows["na_only"]["ours_alpha"] > rows["eu_only"]["ours_alpha"]

    def test_g1_closed_loop(self, context):
        result = run_experiment("G1", context)
        rows = {r["measure"]: r for r in result.rows}
        passive = rows["passive fraction (all regions)"]["ours"]
        assert 0.72 <= passive <= 0.92

    def test_run_all(self, context):
        results = run_all(context)
        assert len(results) == len(ALL_EXPERIMENTS)
