"""Tests for EXPERIMENTS.md generation."""

from repro.experiments.report import write_experiments_md


def test_write_experiments_md(context, tmp_path):
    path = write_experiments_md(tmp_path / "EXPERIMENTS.md", context)
    text = path.read_text()
    # Every experiment section is present, with code-fenced tables.
    for experiment_id in ("T1", "T2", "F5", "F11", "TA4", "G1", "X1"):
        assert f"## {experiment_id}:" in text
    assert text.count("```") % 2 == 0
    assert "paper vs. measured" in text
