"""Stream-mode contexts: same experiments, same rows, bounded memory.

``ExperimentContext(stream=True)`` swaps whole-trace arrays for the
sharded synthesis + single-pass reducers; every experiment -- the
streaming-aware ones and the ``columnar``-fallback ones alike -- must
return results identical to the in-memory context under the same
config (``shard_days`` included: the shard layout is part of the trace
identity, so both sides here carry it).
"""

import math

import pytest

from repro.experiments import ExperimentContext, run_many
from repro.synthesis import SynthesisConfig, TraceCache

CFG = SynthesisConfig(
    days=0.2, mean_arrival_rate=0.3, seed=20040315, shard_days=0.05
)

#: Streaming-aware families (tables, geography, passive, active,
#: correlations, popularity) plus ``G1``, which has no streaming branch
#: and exercises the transparent concat fallback.
IDS = ["T2", "F1", "F4", "F6", "F8", "C1", "F10", "G1"]


def _rows_equal(a, b):
    """Row-list equality that treats NaN == NaN (thin-slice measures)."""
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        if set(ra) != set(rb):
            return False
        for key in ra:
            va, vb = ra[key], rb[key]
            if isinstance(va, float) and isinstance(vb, float):
                if not (va == vb or (math.isnan(va) and math.isnan(vb))):
                    return False
            elif va != vb:
                return False
    return True


def assert_same_results(streamed, in_memory):
    assert [r.experiment_id for r in streamed] == [
        r.experiment_id for r in in_memory
    ]
    for rs, rm in zip(streamed, in_memory):
        assert _rows_equal(rs.rows, rm.rows), rs.experiment_id
        assert rs.notes == rm.notes, rs.experiment_id


@pytest.fixture(scope="module")
def in_memory_results():
    return run_many(IDS, ExperimentContext(CFG))


class TestStreamParity:
    def test_sequential_stream_matches_in_memory(self, in_memory_results):
        streamed = run_many(IDS, ExperimentContext(CFG, stream=True))
        assert_same_results(streamed, in_memory_results)

    def test_parallel_stream_matches_in_memory(self, tmp_path, in_memory_results):
        cache = TraceCache(tmp_path / "cache")
        ctx = ExperimentContext(CFG, cache=cache, stream=True)
        streamed = run_many(IDS, ctx, jobs=2)
        assert_same_results(streamed, in_memory_results)
        # The parent published the sharded entry for the pool workers.
        assert cache.load_sharded(CFG) is not None

    def test_shard_hours_sets_the_window(self):
        ctx = ExperimentContext(CFG, stream=True, shard_hours=1.2)
        assert ctx.config.shard_days == pytest.approx(0.05)


class TestStreamContextViews:
    def test_columnar_fallback_is_byte_identical(self):
        import dataclasses

        import numpy as np

        streamed = ExperimentContext(CFG, stream=True).columnar
        in_memory = ExperimentContext(CFG).columnar
        for field in dataclasses.fields(type(streamed)):
            va = getattr(streamed, field.name)
            vb = getattr(in_memory, field.name)
            if isinstance(va, np.ndarray):
                assert va.dtype == vb.dtype and np.array_equal(va, vb), field.name
            else:
                assert va == vb, field.name

    def test_views_come_from_the_streaming_pass(self):
        ctx = ExperimentContext(CFG, stream=True)
        assert ctx.views == ExperimentContext(CFG).views
        # The streamed context never built the whole-trace filter result.
        assert "cfiltered" not in ctx.__dict__
        assert "filtered" not in ctx.__dict__
