"""Smoke tests keeping the runnable examples runnable.

Each fast example's ``main()`` is executed once with stdout captured; the
assertions pin the take-away lines so a regression in the underlying
library surfaces here before it surfaces for a user.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_and_reports_passive_band(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "generated" in out
        assert "passive sessions" in out
        assert "query classes" in out

    def test_headline_numbers_present(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "paper reports 75-90%" in out


class TestQueryCacheStudy:
    def test_raw_beats_user_in_output(self, capsys):
        load_example("query_cache_study").main()
        out = capsys.readouterr().out
        assert "raw hit rate" in out
        assert "takeaway" in out


class TestLiveMeasurement:
    def test_attribution_holds(self, capsys):
        load_example("live_measurement").main()
        out = capsys.readouterr().out
        assert "HOLDS" in out
        assert "hops=1" in out
