"""Columnar trace backend: conversions, .npz persistence, and parity.

The columnar path only earns its speed if it is lossless: every test
here pins some face of ``Trace == to_trace(from_trace(Trace))``, through
the ``.npz`` archive, and through ``merge_traces``.
"""

import numpy as np
import pytest

from repro.core.events import QueryRecord, SessionRecord
from repro.core.regions import Region
from repro.measurement import (
    COLUMNAR_SCHEMA_VERSION,
    ColumnarTrace,
    PongObservation,
    QueryHitObservation,
    Trace,
    merge_traces,
    normalize_keywords,
)
from repro.synthesis import SynthesisConfig, TraceSynthesizer


def make_trace(offset=0.0):
    trace = Trace(start_time=offset, end_time=offset + 86400.0)
    trace.sessions.append(
        SessionRecord(
            peer_ip="64.1.1.1", region=Region.NORTH_AMERICA,
            start=offset + 10.0, end=offset + 200.0,
            queries=(
                QueryRecord(timestamp=offset + 50.0, keywords="abc def", sha1=True),
                QueryRecord(timestamp=offset + 60.0, keywords="ghi", hops=2,
                            ttl=5, automated=True, hits=3),
            ),
            user_agent="LimeWire/3.8.10", ultrapeer=True, shared_files=3,
        )
    )
    trace.sessions.append(
        SessionRecord(
            peer_ip="80.9.9.9", region=Region.EUROPE,
            start=offset + 20.0, end=offset + 30.0,
            queries=(), user_agent="BearShare/4.6", ultrapeer=False, shared_files=0,
        )
    )
    trace.pongs.append(
        PongObservation(offset + 5.0, "80.1.1.1", Region.EUROPE, 12, one_hop=False)
    )
    trace.queryhits.append(
        QueryHitObservation(offset + 6.0, "58.2.2.2", Region.ASIA, one_hop=True)
    )
    trace.bump("ping_messages", 42)
    trace.bump("query_messages", 7)
    return trace


class TestNormalizeKeywords:
    def test_canonical_form(self):
        assert normalize_keywords("The  Beatles  the") == "beatles the"
        assert normalize_keywords("b a") == normalize_keywords("a  B")

    def test_empty_iff_blank(self):
        assert normalize_keywords("") == ""
        assert normalize_keywords("   ") == ""
        assert normalize_keywords("x") != ""


class TestRecordRoundTrip:
    def test_to_trace_inverts_from_trace(self):
        trace = make_trace()
        back = ColumnarTrace.from_trace(trace).to_trace()
        assert back.sessions == trace.sessions
        assert back.pongs == trace.pongs
        assert back.queryhits == trace.queryhits
        assert back.counters == trace.counters
        assert back.start_time == trace.start_time
        assert back.end_time == trace.end_time

    def test_empty_trace(self):
        trace = Trace(start_time=0.0, end_time=3600.0)
        columnar = ColumnarTrace.from_trace(trace)
        assert columnar.n_sessions == 0
        assert columnar.n_queries == 0
        back = columnar.to_trace()
        assert back.sessions == [] and back.pongs == [] and back.queryhits == []

    def test_query_offsets_and_session_index(self):
        columnar = ColumnarTrace.from_trace(make_trace())
        assert columnar.query_offsets.tolist() == [0, 2, 2]
        assert columnar.query_session_index().tolist() == [0, 0]
        assert columnar.n_sessions == 2
        assert columnar.n_queries == 2

    def test_synthesized_trace_round_trips(self, small_trace):
        back = ColumnarTrace.from_trace(small_trace).to_trace()
        assert back.sessions == small_trace.sessions
        assert back.pongs == small_trace.pongs
        assert back.queryhits == small_trace.queryhits
        assert back.counters == small_trace.counters


class TestNpzRoundTrip:
    def test_npz_round_trip_byte_identical_jsonl(self, tmp_path):
        trace = make_trace()
        direct = tmp_path / "direct.jsonl"
        trace.to_jsonl(direct)

        npz = tmp_path / "trace.npz"
        ColumnarTrace.from_trace(trace).save_npz(npz)
        hopped = tmp_path / "hopped.jsonl"
        ColumnarTrace.load_npz(npz).to_trace().to_jsonl(hopped)

        assert direct.read_bytes() == hopped.read_bytes()

    def test_npz_round_trip_synthesized(self, small_trace, tmp_path):
        npz = tmp_path / "trace.npz"
        ColumnarTrace.from_trace(small_trace).save_npz(npz)
        loaded = ColumnarTrace.load_npz(npz)
        assert loaded.counters == small_trace.counters
        back = loaded.to_trace()
        assert back.sessions == small_trace.sessions
        assert back.pongs == small_trace.pongs
        assert back.queryhits == small_trace.queryhits

    def test_schema_version_mismatch_rejected(self, tmp_path, monkeypatch):
        npz = tmp_path / "trace.npz"
        ColumnarTrace.from_trace(make_trace()).save_npz(npz)
        monkeypatch.setattr(
            "repro.measurement.columnar.COLUMNAR_SCHEMA_VERSION",
            COLUMNAR_SCHEMA_VERSION + 1,
        )
        with pytest.raises(ValueError, match="schema"):
            ColumnarTrace.load_npz(npz)

    def test_no_pickled_objects_in_archive(self, tmp_path):
        # allow_pickle=False on load is only safe if save never needs it.
        npz = tmp_path / "trace.npz"
        ColumnarTrace.from_trace(make_trace()).save_npz(npz)
        with np.load(npz, mmap_mode=None, allow_pickle=False) as data:
            for name in data.files:
                assert data[name].dtype != object, name


class TestMergeParity:
    def test_merge_traces_through_columnar_path(self, tmp_path):
        """Shard-merge is unchanged by a columnar round-trip of the shards."""
        shards = [make_trace(0.0), make_trace(86400.0)]
        expected = merge_traces(shards)

        hopped = []
        for i, shard in enumerate(shards):
            path = tmp_path / f"shard{i}.npz"
            ColumnarTrace.from_trace(shard).save_npz(path)
            hopped.append(ColumnarTrace.load_npz(path).to_trace())
        merged = merge_traces(hopped)

        assert merged.sessions == expected.sessions
        assert merged.pongs == expected.pongs
        assert merged.queryhits == expected.queryhits
        assert merged.counters == expected.counters
        assert merged.start_time == expected.start_time
        assert merged.end_time == expected.end_time

    def test_sharded_synthesis_merge_parity(self, tmp_path):
        """Columnarizing a sharded synthesis output equals the direct trace."""
        config = SynthesisConfig(days=0.1, mean_arrival_rate=0.3, seed=7, jobs=2)
        trace = TraceSynthesizer(config).run()
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        trace.to_jsonl(a)
        ColumnarTrace.from_trace(trace).to_trace().to_jsonl(b)
        assert a.read_bytes() == b.read_bytes()
