"""Tests for trace persistence and session reconstruction."""

import pytest

from repro.core.events import QueryRecord, SessionRecord
from repro.core.regions import Region
from repro.measurement import (
    MeasurementNode,
    PongObservation,
    QueryHitObservation,
    RawEvent,
    Trace,
    reconstruct_sessions,
)
from repro.measurement.monitor import IDLE_CLOSE_SECONDS, IDLE_PROBE_SECONDS


def make_trace():
    trace = Trace(start_time=0.0, end_time=86400.0)
    trace.sessions.append(
        SessionRecord(
            peer_ip="64.1.1.1", region=Region.NORTH_AMERICA, start=10.0, end=200.0,
            queries=(QueryRecord(timestamp=50.0, keywords="abc", sha1=True),),
            user_agent="LimeWire/3.8.10", ultrapeer=True, shared_files=3,
        )
    )
    trace.pongs.append(PongObservation(5.0, "80.1.1.1", Region.EUROPE, 12, one_hop=False))
    trace.queryhits.append(QueryHitObservation(6.0, "58.2.2.2", Region.ASIA, one_hop=False))
    trace.bump("ping_messages", 42)
    return trace


class TestTrace:
    def test_counters_and_derived(self):
        trace = make_trace()
        assert trace.n_connections == 1
        assert trace.hop1_query_count() == 1
        assert trace.counters["ping_messages"] == 42
        assert trace.duration_days == pytest.approx(1.0)

    def test_jsonl_roundtrip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        loaded = Trace.from_jsonl(path)
        assert loaded.sessions == trace.sessions
        assert loaded.pongs == trace.pongs
        assert loaded.queryhits == trace.queryhits
        assert loaded.counters == trace.counters
        assert loaded.start_time == trace.start_time

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            Trace.from_jsonl(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "pong", "timestamp": 1.0}\n')
        with pytest.raises(ValueError):
            Trace.from_jsonl(path)


class TestReconstruction:
    def test_matches_monitor_semantics(self):
        """The offline reconstruction must agree with the live monitor."""
        node = MeasurementNode()
        events = []
        conn = node.open_connection(10.0, "64.1.1.1", Region.NORTH_AMERICA, "LW", False, 5)
        events.append(RawEvent("connect", conn, 10.0, peer_ip="64.1.1.1",
                               region=Region.NORTH_AMERICA, user_agent="LW",
                               shared_files=5))
        node.receive_query(conn, 40.0, "abc")
        events.append(RawEvent("query", conn, 40.0, keywords="abc"))
        live = node.client_departed(conn, 300.0)
        events.append(RawEvent("depart", conn, 300.0))

        rebuilt = reconstruct_sessions(events)
        assert len(rebuilt) == 1
        assert rebuilt[0].start == live.start
        assert rebuilt[0].end == live.end
        assert rebuilt[0].queries == live.queries

    def test_bye_exact_end(self):
        events = [
            RawEvent("connect", 1, 0.0, peer_ip="1.1.1.1", region=Region.EUROPE),
            RawEvent("bye", 1, 90.0),
        ]
        sessions = reconstruct_sessions(events)
        assert sessions[0].end == 90.0

    def test_silent_depart_overshoot(self):
        events = [
            RawEvent("connect", 1, 0.0, peer_ip="1.1.1.1", region=Region.EUROPE),
            RawEvent("depart", 1, 100.0),
        ]
        sessions = reconstruct_sessions(events)
        assert sessions[0].end == pytest.approx(100.0 + IDLE_PROBE_SECONDS + IDLE_CLOSE_SECONDS)

    def test_unterminated_needs_end_time(self):
        events = [RawEvent("connect", 1, 0.0, peer_ip="1.1.1.1", region=Region.ASIA)]
        with pytest.raises(ValueError):
            reconstruct_sessions(events)
        sessions = reconstruct_sessions(events, end_time=500.0)
        assert sessions[0].end == 500.0

    def test_out_of_order_input_sorted(self):
        events = [
            RawEvent("bye", 1, 100.0),
            RawEvent("query", 1, 50.0, keywords="x"),
            RawEvent("connect", 1, 0.0, peer_ip="1.1.1.1", region=Region.ASIA),
        ]
        sessions = reconstruct_sessions(events)
        assert sessions[0].query_count == 1

    def test_double_connect_rejected(self):
        events = [
            RawEvent("connect", 1, 0.0, peer_ip="1.1.1.1", region=Region.ASIA),
            RawEvent("connect", 1, 5.0, peer_ip="1.1.1.1", region=Region.ASIA),
        ]
        with pytest.raises(ValueError):
            reconstruct_sessions(events, end_time=10.0)

    def test_query_on_unknown_connection_rejected(self):
        with pytest.raises(ValueError):
            reconstruct_sessions([RawEvent("query", 9, 1.0, keywords="x")])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            reconstruct_sessions([RawEvent("dance", 1, 1.0)])


class TestMonitorEventLog:
    def test_raw_log_reconstructs_identical_sessions(self):
        """The live monitor's sessions and the offline sessionizer applied
        to its own event log must agree exactly."""
        from repro.core.regions import Region
        from repro.measurement import MeasurementNode, reconstruct_sessions

        node = MeasurementNode(record_events=True)
        c1 = node.open_connection(0.0, "64.1.1.1", Region.NORTH_AMERICA, "LW", False, 2)
        node.receive_query(c1, 40.0, "abc")
        node.client_departed(c1, 300.0)
        c2 = node.open_connection(50.0, "80.1.1.1", Region.EUROPE, "BS", True, 9)
        node.receive_query(c2, 60.0, "def", sha1=True)
        node.client_bye(c2, 400.0)
        live = node.finalize(1000.0)
        rebuilt = reconstruct_sessions(node.raw_events, end_time=1000.0)
        assert len(rebuilt) == len(live)
        for a, b in zip(sorted(rebuilt, key=lambda s: s.start),
                        sorted(live, key=lambda s: s.start)):
            assert (a.peer_ip, a.start, a.end) == (b.peer_ip, b.start, b.end)
            assert [q.keywords for q in a.queries] == [q.keywords for q in b.queries]

    def test_log_disabled_by_default(self):
        from repro.core.regions import Region
        from repro.measurement import MeasurementNode

        node = MeasurementNode()
        conn = node.open_connection(0.0, "64.1.1.1", Region.ASIA, "X")
        node.client_bye(conn, 70.0)
        assert node.raw_events == []
