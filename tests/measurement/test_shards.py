"""Sharded on-disk traces: round-trip, manifest totals, concat parity.

The out-of-core pipeline only earns its bounded memory if the shard
spill is lossless: ``run_sharded(...).concat()`` must be byte-identical
to ``run_columnar()`` for the same config (the shard windows partition
the per-shard RNG streams, so "same config" includes ``shard_days``).
"""

import dataclasses

import numpy as np
import pytest

from repro.measurement import ColumnarTrace
from repro.measurement.shards import ShardWriter, ShardedTrace
from repro.synthesis import SynthesisConfig, TraceSynthesizer

from .test_columnar import make_trace


def assert_columnar_identical(a: ColumnarTrace, b: ColumnarTrace):
    """Field-by-field equality, dtype-exact for every array column."""
    for field in dataclasses.fields(ColumnarTrace):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(va, np.ndarray):
            assert va.dtype == vb.dtype, field.name
            assert np.array_equal(va, vb), field.name
        else:
            assert va == vb, field.name


@pytest.fixture(scope="module")
def sharded_config():
    # Four shard windows over 0.4 days, small enough to synthesize in
    # seconds but with sessions genuinely spanning shard edges.
    return SynthesisConfig(
        days=0.4, mean_arrival_rate=0.3, seed=777, shard_days=0.1
    )


@pytest.fixture(scope="module")
def sharded(sharded_config, tmp_path_factory):
    dest = tmp_path_factory.mktemp("shards") / "trace"
    return TraceSynthesizer(sharded_config).run_sharded(dest)


class TestShardWriter:
    def test_round_trip_through_open(self, tmp_path):
        parts = [
            ColumnarTrace.from_trace(make_trace(offset=0.0)),
            ColumnarTrace.from_trace(make_trace(offset=86400.0)),
        ]
        writer = ShardWriter(tmp_path / "t", 0.0, 2 * 86400.0)
        for part in parts:
            writer.append(part)
        written = writer.close({"ping_messages": 84, "query_messages": 14})

        reopened = ShardedTrace.open(tmp_path / "t")
        assert reopened.n_shards == 2
        assert reopened.n_sessions == sum(p.n_sessions for p in parts)
        assert reopened.counters == {"ping_messages": 84, "query_messages": 14}
        for loaded, part in zip(reopened.iter_shards(), parts):
            # Shard windows differ from the parts' own bounds; the
            # payload columns must survive the spill bit-for-bit.
            assert np.array_equal(loaded.session_start, part.session_start)
            assert np.array_equal(loaded.query_keywords, part.query_keywords)
            assert loaded.counters == part.counters
        assert_columnar_identical(written.concat(), reopened.concat())

    def test_open_without_manifest_rejected(self, tmp_path):
        with pytest.raises((FileNotFoundError, OSError)):
            ShardedTrace.open(tmp_path / "absent")


class TestShardedSynthesis:
    def test_manifest_totals_match_payload(self, sharded, sharded_config):
        assert sharded.n_shards == 4
        assert sharded.duration_days == pytest.approx(sharded_config.days)
        whole = sharded.concat()
        assert sharded.n_sessions == whole.n_sessions
        assert sharded.n_queries == whole.n_queries
        assert sharded.counters == whole.counters
        hop1 = int(np.count_nonzero(whole.query_hops == 1))
        assert sharded.hop1_query_count() == hop1

    def test_shards_are_time_ordered_and_windowed(self, sharded):
        # Sessions belong to the shard whose window holds their *start*
        # (they may outlive it, so every shard's end is the trace end);
        # canonical in-shard sort keeps starts monotone, and the window
        # starts tile the trace without overlap.
        chunks = list(sharded.iter_shards())
        window_starts = [chunk.start_time for chunk in chunks]
        assert window_starts == sorted(window_starts)
        assert window_starts[0] == 0.0
        for i, chunk in enumerate(chunks):
            assert chunk.end_time == chunks[-1].end_time
            if chunk.n_sessions:
                starts = chunk.session_start
                assert np.all(np.diff(starts) >= 0)
                assert starts[0] >= chunk.start_time
                if i + 1 < len(chunks):
                    assert starts[-1] < chunks[i + 1].start_time

    def test_concat_identical_to_in_memory_run(self, sharded, sharded_config):
        # Same config on both sides: shard windows partition the RNG
        # streams, so shard_days is part of the trace identity.
        in_memory = TraceSynthesizer(sharded_config).run_columnar()
        assert_columnar_identical(sharded.concat(), in_memory)

    def test_event_backend_cannot_shard(self, tmp_path):
        config = SynthesisConfig(days=0.1, seed=1, backend="event")
        with pytest.raises(ValueError, match="columnar backend"):
            TraceSynthesizer(config).run_sharded(tmp_path / "t")
