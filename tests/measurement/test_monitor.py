"""Tests for the passive measurement node."""

import pytest

from repro.core.regions import Region
from repro.measurement import (
    IDLE_CLOSE_SECONDS,
    IDLE_PROBE_SECONDS,
    MeasurementNode,
)


def open_one(node, now=0.0, ip="64.1.1.1", agent="LimeWire/3.8.10"):
    conn = node.open_connection(
        now, peer_ip=ip, region=Region.NORTH_AMERICA,
        user_agent=agent, ultrapeer=False, shared_files=7,
    )
    assert conn is not None
    return conn


class TestSessionEndSemantics:
    def test_silent_departure_overshoots_30s(self):
        # "we will overestimate the end of most connected session
        # durations by approximately 30 seconds" (Section 3.2).
        node = MeasurementNode()
        conn = open_one(node, now=100.0)
        session = node.client_departed(conn, now=500.0)
        assert session.end == pytest.approx(500.0 + IDLE_PROBE_SECONDS + IDLE_CLOSE_SECONDS)
        assert session.duration == pytest.approx(430.0)

    def test_bye_ends_exactly(self):
        node = MeasurementNode()
        conn = open_one(node, now=100.0)
        session = node.client_bye(conn, now=500.0)
        assert session.end == pytest.approx(500.0)

    def test_tcp_close_ends_exactly(self):
        node = MeasurementNode()
        conn = open_one(node, now=0.0)
        session = node.client_closed(conn, now=8.0)
        assert session.duration == pytest.approx(8.0)

    def test_finalize_truncates_at_trace_end(self):
        node = MeasurementNode()
        open_one(node, now=100.0)
        sessions = node.finalize(end_time=1000.0)
        assert len(sessions) == 1
        assert sessions[0].end == pytest.approx(1000.0)
        assert node.open_count == 0


class TestQueries:
    def test_queries_attached_in_order(self):
        node = MeasurementNode()
        conn = open_one(node)
        node.receive_query(conn, 10.0, "alpha")
        node.receive_query(conn, 20.0, "beta", sha1=True, automated=True)
        session = node.client_bye(conn, 100.0)
        assert [q.keywords for q in session.queries] == ["alpha", "beta"]
        assert session.queries[1].sha1
        assert session.queries[0].hops == 1

    def test_query_before_open_rejected(self):
        node = MeasurementNode()
        conn = open_one(node, now=50.0)
        with pytest.raises(ValueError):
            node.receive_query(conn, 10.0, "too early")

    def test_query_on_closed_connection_rejected(self):
        node = MeasurementNode()
        conn = open_one(node)
        node.client_bye(conn, 100.0)
        with pytest.raises(KeyError):
            node.receive_query(conn, 200.0, "late")


class TestSlots:
    def test_capacity_enforced(self):
        node = MeasurementNode(max_slots=2)
        open_one(node, ip="64.0.0.1")
        open_one(node, ip="64.0.0.2")
        third = node.open_connection(
            0.0, peer_ip="64.0.0.3", region=Region.EUROPE, user_agent="X",
        )
        assert third is None
        assert node.rejected_connections == 1

    def test_slot_freed_on_close(self):
        node = MeasurementNode(max_slots=1)
        conn = open_one(node)
        node.client_bye(conn, 10.0)
        assert open_one(node, now=20.0, ip="64.0.0.9") is not None

    def test_unbounded_mode(self):
        node = MeasurementNode(max_slots=None)
        for i in range(500):
            assert node.open_connection(
                0.0, peer_ip=f"64.1.{i // 200}.{i % 200 + 1}",
                region=Region.ASIA, user_agent="X",
            ) is not None

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            MeasurementNode(max_slots=0)


class TestHandshakeCapture:
    def test_user_agent_recorded_from_handshake(self):
        node = MeasurementNode()
        conn = open_one(node, agent="Gnucleus 1.8.6.0")
        session = node.client_bye(conn, 70.0)
        assert session.user_agent == "Gnucleus 1.8.6.0"

    def test_ultrapeer_flag_recorded(self):
        node = MeasurementNode()
        conn = node.open_connection(
            0.0, peer_ip="80.1.1.1", region=Region.EUROPE,
            user_agent="BearShare 4.6.2", ultrapeer=True,
        )
        session = node.client_bye(conn, 90.0)
        assert session.ultrapeer


class TestKeepalives:
    def test_idle_stretch_counts_exchanges(self):
        node = MeasurementNode()
        conn = open_one(node, now=0.0)
        # 150 s of idleness = 10 probe intervals before the next query.
        node.receive_query(conn, 150.0, "x")
        assert node.keepalive_pings_sent == 10
        assert node.keepalive_pongs_received == 10

    def test_final_probe_unanswered(self):
        node = MeasurementNode()
        conn = open_one(node, now=0.0)
        node.client_departed(conn, now=5.0)
        assert node.keepalive_pings_sent == 1
        assert node.keepalive_pongs_received == 0

    def test_active_connection_no_keepalives(self):
        node = MeasurementNode()
        conn = open_one(node, now=0.0)
        for i in range(1, 10):
            node.receive_query(conn, float(i), f"q{i}")
        assert node.keepalive_pings_sent == 0
