"""Tests for the transfer layer: bandwidth classes and downloads."""

import numpy as np
import pytest

from repro.core.events import QueryRecord, SessionRecord
from repro.core.regions import Region
from repro.transfers import (
    BANDWIDTH_PROFILES,
    BandwidthClass,
    DownloadModel,
    completion_rate_by_class,
    download_size_ccdf,
    link_kbps,
    sample_bandwidth_class,
    throughput_by_class,
    time_between_downloads,
)

RNG = np.random.default_rng(66)


class TestBandwidth:
    def test_shares_sum_to_one(self):
        assert sum(p.share for p in BANDWIDTH_PROFILES.values()) == pytest.approx(1.0)

    def test_population_mix(self):
        classes = [sample_bandwidth_class(RNG) for _ in range(5000)]
        dialup = classes.count(BandwidthClass.DIALUP) / len(classes)
        assert dialup == pytest.approx(0.22, abs=0.03)

    def test_ultrapeers_never_dialup(self):
        for _ in range(500):
            cls = sample_bandwidth_class(RNG, ultrapeer=True)
            assert BANDWIDTH_PROFILES[cls].ultrapeer_capable

    def test_link_kbps(self):
        down, up = link_kbps(BandwidthClass.DSL)
        assert down > up  # asymmetric consumer broadband
        down, up = link_kbps(BandwidthClass.T1)
        assert down == up


def answered_session(ip="64.0.0.1", n_answered=3, ultrapeer=False):
    queries = tuple(
        QueryRecord(timestamp=100.0 * (i + 1), keywords=f"song {i}", hits=2)
        for i in range(n_answered)
    )
    return SessionRecord(
        peer_ip=ip, region=Region.NORTH_AMERICA, start=0.0, end=10_000.0,
        queries=queries, ultrapeer=ultrapeer,
    )


class TestDownloadModel:
    def test_only_answered_queries_spawn_downloads(self):
        unanswered = SessionRecord(
            peer_ip="64.0.0.2", region=Region.EUROPE, start=0.0, end=1000.0,
            queries=(QueryRecord(timestamp=10.0, keywords="x", hits=0),),
        )
        model = DownloadModel(download_prob=1.0, seed=1)
        assert model.generate([unanswered]) == []
        assert model.generate([answered_session()])

    def test_sha1_queries_never_download(self):
        sha1_session = SessionRecord(
            peer_ip="64.0.0.3", region=Region.ASIA, start=0.0, end=1000.0,
            queries=(QueryRecord(timestamp=10.0, keywords="urn", hits=3, sha1=True),),
        )
        model = DownloadModel(download_prob=1.0, seed=1)
        assert model.generate([sha1_session]) == []

    def test_download_prob_respected(self):
        sessions = [answered_session(ip=f"64.0.{i // 200}.{i % 200 + 1}") for i in range(300)]
        low = DownloadModel(download_prob=0.1, seed=2).generate(sessions)
        high = DownloadModel(download_prob=0.9, seed=2).generate(sessions)
        assert len(high) > 4 * len(low)

    def test_records_sorted_and_after_query(self):
        model = DownloadModel(download_prob=1.0, seed=3)
        downloads = model.generate([answered_session()])
        starts = [d.started_at for d in downloads]
        assert starts == sorted(starts)
        for d in downloads:
            assert d.started_at >= 102.0  # query time + at least 2 s

    def test_sizes_lognormal_scale(self):
        model = DownloadModel(download_prob=1.0, seed=4)
        sessions = [answered_session(ip=f"64.1.{i // 200}.{i % 200 + 1}", n_answered=5)
                    for i in range(200)]
        downloads = model.generate(sessions)
        median = np.median([d.size_bytes for d in downloads])
        assert 2e6 < median < 7e6  # around the MP3-era ~3.7 MB

    def test_aborted_shorter_than_complete(self):
        model = DownloadModel(download_prob=1.0, abort_prob=0.5, seed=5)
        sessions = [answered_session(ip=f"64.2.{i // 200}.{i % 200 + 1}", n_answered=5)
                    for i in range(100)]
        downloads = model.generate(sessions)
        done = [d for d in downloads if d.completed]
        aborted = [d for d in downloads if not d.completed]
        assert done and aborted
        # Aborts transfer less than the full file.
        for d in aborted:
            assert d.throughput_kbps >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DownloadModel(download_prob=1.5)
        with pytest.raises(ValueError):
            DownloadModel(efficiency=0.0)


class TestTransferAnalysis:
    @pytest.fixture(scope="class")
    def downloads(self):
        sessions = [answered_session(ip=f"64.3.{i // 200}.{i % 200 + 1}", n_answered=4)
                    for i in range(150)]
        return DownloadModel(download_prob=0.8, seed=6).generate(sessions)

    def test_size_ccdf(self, downloads):
        ccdf = download_size_ccdf(downloads)
        assert ccdf.at(1e4) > 0.9  # nearly everything above 10 kB
        assert ccdf.at(1e9) < 0.05

    def test_size_ccdf_empty(self):
        with pytest.raises(ValueError):
            download_size_ccdf([])

    def test_time_between_downloads_per_peer(self, downloads):
        gaps = time_between_downloads(downloads)
        assert gaps
        assert all(g >= 0 for g in gaps)

    def test_completion_rates(self, downloads):
        rates = completion_rate_by_class(downloads)
        for rate in rates.values():
            assert 0.0 <= rate <= 1.0

    def test_throughput_ordering(self, downloads):
        throughput = throughput_by_class(downloads)
        if BandwidthClass.DIALUP in throughput and BandwidthClass.T1 in throughput:
            assert throughput[BandwidthClass.DIALUP] < throughput[BandwidthClass.T1]
