"""SARIF output: valid structure, deterministic bytes, faithful results."""

import json
from pathlib import Path

from repro.lint import (
    RULESET_VERSION,
    all_rules,
    format_json,
    format_sarif,
    format_text,
    run_lint,
)

FLAGGED = "import numpy as np\nrng = np.random.default_rng()\n"


def report_for(tmp_path):
    (tmp_path / "pkg").mkdir(exist_ok=True)
    (tmp_path / "pkg" / "dirty.py").write_text(FLAGGED)
    return run_lint(["pkg"], tmp_path, baseline={})


class TestSarifStructure:
    def test_schema_and_version(self, tmp_path):
        log = json.loads(format_sarif(report_for(tmp_path)))
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(log["runs"]) == 1

    def test_driver_carries_ruleset_version_and_all_rules(self, tmp_path):
        driver = json.loads(format_sarif(report_for(tmp_path)))[
            "runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert driver["version"] == RULESET_VERSION
        ids = {rule["id"] for rule in driver["rules"]}
        assert ids == {cls.code for cls in all_rules()}

    def test_rule_descriptors_have_rationale_and_level(self, tmp_path):
        driver = json.loads(format_sarif(report_for(tmp_path)))[
            "runs"][0]["tool"]["driver"]
        for rule in driver["rules"]:
            assert rule["fullDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in ("error",
                                                             "warning")

    def test_results_mirror_findings(self, tmp_path):
        report = report_for(tmp_path)
        results = json.loads(format_sarif(report))["runs"][0]["results"]
        assert len(results) == len(report.findings) == 1
        (result,) = results
        (finding,) = report.findings
        assert result["ruleId"] == finding.code == "DET101"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == finding.path
        assert location["region"]["startLine"] == finding.line
        assert location["region"]["startColumn"] == finding.col

    def test_rule_index_points_into_rules_array(self, tmp_path):
        log = json.loads(format_sarif(report_for(tmp_path)))
        driver = log["runs"][0]["tool"]["driver"]
        for result in log["runs"][0]["results"]:
            idx = result["ruleIndex"]
            assert driver["rules"][idx]["id"] == result["ruleId"]


class TestSarifStability:
    def test_byte_identical_across_reruns(self, tmp_path):
        first = format_sarif(report_for(tmp_path))
        second = format_sarif(report_for(tmp_path))
        assert first == second

    def test_text_and_json_formats_unchanged_by_sarif(self, tmp_path):
        # The SARIF serializer must not leak into the stable formats:
        # the JSON report's key set is exactly the pre-SARIF contract.
        report = report_for(tmp_path)
        payload = json.loads(format_json(report))
        assert set(payload) == {"ruleset_version", "rules", "files_scanned",
                                "findings", "suppressed", "stale_baseline"}
        assert "sarif" not in format_text(report).lower()

    def test_repo_sarif_run_is_clean(self):
        root = Path(__file__).resolve().parents[2]
        from repro.lint import load_config
        report = run_lint(["src"], root, config=load_config(root))
        log = json.loads(format_sarif(report))
        assert log["runs"][0]["results"] == []
