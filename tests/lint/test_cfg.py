"""Dataflow layer semantics: CFG shape, reaching defs, co-firing, taint.

These tests pin the *queries* the RNG7xx/DTY8xx rules depend on, not
the CFG internals: which definitions reach a use through branches and
loop back edges, when two uses of one definition can execute in the
same run, and how taint propagates through assignments.
"""

import ast

from repro.lint.cfg import FunctionDataflow, build_cfg


def dataflow(src: str) -> FunctionDataflow:
    fn = ast.parse(src).body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    return FunctionDataflow(fn)


def load_named(df: FunctionDataflow, name: str, nth: int = 0) -> ast.Name:
    loads = [n for n in df.loads() if n.id == name]
    return loads[nth]


class TestReachingDefinitions:
    def test_straight_line_single_def_reaches(self):
        df = dataflow("def f():\n    x = 1\n    return x\n")
        (definition,) = df.reaching(load_named(df, "x"))
        assert definition.name == "x"

    def test_redefinition_kills_earlier_def(self):
        df = dataflow("def f():\n    x = 1\n    x = 2\n    return x\n")
        (definition,) = df.reaching(load_named(df, "x"))
        assert isinstance(definition.value, ast.Constant)
        assert definition.value.value == 2

    def test_both_branch_defs_reach_the_join(self):
        df = dataflow(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n"
        )
        reaching = df.reaching(load_named(df, "x"))
        assert sorted(d.value.value for d in reaching) == [1, 2]

    def test_loop_body_def_reaches_header_use(self):
        df = dataflow(
            "def f(n):\n"
            "    x = 0\n"
            "    while x < n:\n"
            "        x = x + 1\n"
            "    return x\n"
        )
        # The `x < n` test sees both the init and the back-edge def.
        reaching = df.reaching(load_named(df, "x"))
        assert len(reaching) == 2

    def test_parameters_are_definitions(self):
        df = dataflow("def f(rng):\n    return rng\n")
        (definition,) = df.reaching(load_named(df, "rng"))
        assert definition.is_param

    def test_for_target_is_loop_definition(self):
        df = dataflow("def f(xs):\n    for x in xs:\n        y = x\n")
        (definition,) = df.reaching(load_named(df, "x"))
        assert definition.is_loop_target


class TestCanCofire:
    def test_sequential_uses_cofire(self):
        df = dataflow("def f():\n    s = object()\n    a = s\n    b = s\n")
        (definition,) = df.definitions_of("s")
        u1, u2 = [n for n in df.loads() if n.id == "s"]
        assert df.can_cofire(definition, u1, u2)

    def test_exclusive_branch_uses_do_not_cofire(self):
        df = dataflow(
            "def f(c):\n"
            "    s = object()\n"
            "    if c:\n"
            "        a = s\n"
            "    else:\n"
            "        b = s\n"
        )
        (definition,) = df.definitions_of("s")
        u1, u2 = [n for n in df.loads() if n.id == "s"]
        assert not df.can_cofire(definition, u1, u2)

    def test_redefinition_between_uses_blocks_cofire(self):
        df = dataflow(
            "def f():\n"
            "    s = object()\n"
            "    a = s\n"
            "    s = object()\n"
            "    b = s\n"
        )
        first_def = df.definitions_of("s")[0]
        u1, u2 = [n for n in df.loads() if n.id == "s"]
        assert not df.can_cofire(first_def, u1, u2)

    def test_loop_makes_single_use_cofire_with_itself(self):
        df = dataflow(
            "def f(xs):\n"
            "    s = object()\n"
            "    for x in xs:\n"
            "        a = s\n"
        )
        (definition,) = df.definitions_of("s")
        (use,) = [n for n in df.loads() if n.id == "s"]
        assert df.can_cofire(definition, use, use)


class TestTaint:
    @staticmethod
    def _is_draw(expr):
        return (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "random")

    def test_taint_flows_through_assignment_chain(self):
        df = dataflow(
            "def f(rng):\n"
            "    u = rng.random()\n"
            "    v = u * 2\n"
            "    return v\n"
        )
        tainted = df.tainted_loads(self._is_draw)
        tainted_names = {n.id for n in df.loads() if id(n) in tainted}
        assert "u" in tainted_names and "v" in tainted_names

    def test_untainted_variable_stays_clean(self):
        df = dataflow(
            "def f(rng, k):\n"
            "    u = rng.random()\n"
            "    w = k + 1\n"
            "    return u, w\n"
        )
        tainted = df.tainted_loads(self._is_draw)
        tainted_names = {n.id for n in df.loads() if id(n) in tainted}
        assert "w" not in tainted_names

    def test_expr_taint_detects_direct_draw_in_condition(self):
        fn_src = ("def f(rng):\n"
                  "    if rng.random() < 0.5:\n"
                  "        return 1\n"
                  "    return 0\n")
        df = dataflow(fn_src)
        branch = next(n for n in ast.walk(df.fn) if isinstance(n, ast.If))
        tainted = df.tainted_loads(self._is_draw)
        assert df.expr_is_tainted(branch.test, tainted, self._is_draw)


class TestCfgShape:
    def test_every_block_reaches_exit_or_is_entry(self):
        cfg = build_cfg(ast.parse(
            "def f(c):\n"
            "    if c:\n"
            "        return 1\n"
            "    return 2\n"
        ).body[0])
        assert cfg.blocks  # parsed into at least entry + branches

    def test_try_and_with_do_not_crash(self):
        df = dataflow(
            "def f(p):\n"
            "    with open(p) as fh:\n"
            "        try:\n"
            "            x = fh.read()\n"
            "        except OSError:\n"
            "            x = ''\n"
            "    return x\n"
        )
        assert len(df.reaching(load_named(df, "x"))) >= 1
