"""`repro-p2p lint` end-to-end through the CLI entry point."""

import json
from pathlib import Path

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == ["src"]
        assert args.output_format == "text"
        assert not args.write_baseline

    def test_flags(self):
        args = build_parser().parse_args(
            ["lint", "src", "tests", "--format", "json",
             "--select", "det101,DET301", "--ignore", "PAR401"]
        )
        assert args.paths == ["src", "tests"]
        assert args.output_format == "json"
        assert args.select == "det101,DET301"


class TestLintCommand:
    def test_repo_lints_clean(self, capsys):
        # Clean against the committed (empty) baseline; a stale baseline
        # entry still fails, so a budget cannot silently outlive its debt.
        code = main(["lint", "src", "tests", "--root", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 finding(s)" in out

    def test_repo_lint_debt_is_exactly_the_baseline(self, capsys):
        # The baseline is empty, so the no-baseline run must be clean
        # too: there is no budgeted debt left for new findings to hide
        # behind (the last entry, workload_io's eager read, now states
        # mmap_mode=None explicitly).
        code = main(["lint", "src", "tests", "--root", str(REPO_ROOT),
                     "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 finding(s)" in out

    def test_violation_fails_with_clickable_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        code = main(["lint", str(bad), "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "bad.py:2:" in out and "DET101" in out

    def test_select_limits_rules(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        code = main(["lint", str(bad), "--root", str(tmp_path),
                     "--select", "DET301"])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_format_records_ruleset(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = main(["lint", str(tmp_path / "ok.py"), "--root", str(tmp_path),
                     "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ruleset_version"]
        assert payload["findings"] == []

    def test_sarif_format_emits_valid_log(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        code = main(["lint", str(bad), "--root", str(tmp_path),
                     "--format", "sarif"])
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "DET101"

    def test_prefix_select_runs_new_rule_families(self, capsys):
        # The acceptance command: family prefixes select every RNG7xx,
        # DTY8xx and NOQ9xx rule, and the repo is clean under them.
        code = main(["lint", "src", "--root", str(REPO_ROOT),
                     "--select", "RNG7,DTY8,NOQ9", "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0, out
        payload = json.loads(out)
        assert payload["findings"] == []
        for family in ("RNG701", "RNG702", "RNG703",
                       "DTY801", "DTY802", "DTY803", "NOQ901"):
            assert family in payload["rules"]

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nnow = time.time()\n")
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\nbaseline = "baseline.json"\n'
        )
        assert main(["lint", str(bad), "--root", str(tmp_path),
                     "--write-baseline"]) == 0
        assert (tmp_path / "baseline.json").is_file()
        # The baselined debt no longer fails the gate...
        assert main(["lint", str(bad), "--root", str(tmp_path)]) == 0
        # ...but a strict run still sees it.
        capsys.readouterr()
        assert main(["lint", str(bad), "--root", str(tmp_path),
                     "--no-baseline"]) == 1
