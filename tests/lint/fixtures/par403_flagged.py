"""Flagged PAR403: workers share one inherited file offset."""
from concurrent.futures import ProcessPoolExecutor

_LOG = open("worker.log", "a")


def work(item):
    _LOG.write(f"{item}\n")
    return item


def run(items):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(work, items))
