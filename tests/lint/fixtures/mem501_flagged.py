"""MEM501 repro: eager numpy.load without an explicit mmap_mode."""

import numpy as np


def load_trace(path):
    bundle = np.load(path, allow_pickle=False)  # flagged: no mmap_mode
    return bundle["session_start"]
