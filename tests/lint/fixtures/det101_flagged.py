"""Flagged DET101: unseeded default_rng draws OS entropy."""
import numpy as np


def jitter(n):
    rng = np.random.default_rng()
    return rng.random(n)
