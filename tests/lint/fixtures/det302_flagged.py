"""Flagged DET302: filesystem listing order is arbitrary."""
import os


def entries(path):
    return [name for name in os.listdir(path)]
