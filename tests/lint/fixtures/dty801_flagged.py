"""DTY801 flagged: one branch binds float32, the other float64."""

import numpy as np


def scores_for(n, compact):
    if compact:
        scores = np.zeros(n, dtype=np.float32)
    else:
        scores = np.zeros(n)
    return scores * 2.0
