"""Clean DET203: ids come from a seeded rng stream."""


def session_id(rng):
    return bytes(rng.bytes(16)).hex()
