"""Kernel helpers imported from their real home, not the removed shim."""

from repro.core.kernels import segmented_arange, segmented_cumsum

__all__ = ["segmented_arange", "segmented_cumsum"]
