"""Flagged DET203: uuid4 draws ambient entropy."""
import uuid


def session_id():
    return uuid.uuid4().hex
