"""RNG702 flagged: pool closure captures the parent's generator."""

import numpy as np
from concurrent.futures import ProcessPoolExecutor


def jitter_all(items, seed):
    rng = np.random.default_rng(seed)
    with ProcessPoolExecutor() as pool:
        return list(pool.map(lambda x: x + rng.random(), items))
