"""Clean PAR401: the worker is pure; results flow back."""
from concurrent.futures import ProcessPoolExecutor


def work(item):
    return item


def run(items):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(work, items))
