"""Clean DET301: sorted() pins the iteration order."""


def titles(keywords):
    return [k.title() for k in sorted(set(keywords))]
