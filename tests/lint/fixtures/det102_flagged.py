"""Flagged DET102: legacy module-state numpy RNG call."""
import numpy as np


def noise(n):
    return np.random.normal(size=n)
