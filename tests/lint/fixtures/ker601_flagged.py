"""Fixture: raw kernel idioms inside an engine module (all flagged).

The runner maps this file under an engine path fragment; every call
below bypasses the repro.core.kernels funnel.
"""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def draw_regions(cum, rng, n):
    u = rng.random(n)
    return np.searchsorted(cum, u, side="left")  # KER601


def draw_regions_method(cum, rng, n):
    return cum.searchsorted(rng.random(n))  # KER601


def shard_streams(seed, n_shards):
    return np.random.SeedSequence(seed).spawn(n_shards)  # KER601


def fan_out(task, items):
    with ProcessPoolExecutor(max_workers=2) as pool:  # KER601
        return list(pool.map(task, items))
