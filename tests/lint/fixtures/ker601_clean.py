"""Fixture: engine module drawing/sharding/fanning out through kernels."""

import numpy as np

from repro.core.kernels import (
    CategoricalTable,
    pool_map,
    resolve_workers,
    spawn_shard_streams,
)


def draw_regions(cdf, rng, n):
    return CategoricalTable(cdf).sample(rng, n)


def shard_streams(seed, n_shards):
    return [spawn_shard_streams(seed, n_shards, i) for i in range(n_shards)]


def fan_out(task, items, jobs):
    return pool_map(task, items, resolve_workers(jobs, len(items)))


def cdf_distance(a, b):
    # Statistics over sorted samples, not a sampling draw: the noqa is
    # the sanctioned escape hatch inside engine modules.
    grid = np.union1d(a, b)
    return np.searchsorted(a, grid, side="right")  # repro: noqa[KER601] -- CDF statistic, not a draw
