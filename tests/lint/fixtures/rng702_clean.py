"""RNG702 clean: per-task seeds travel as arguments, not closure state."""

import numpy as np
from concurrent.futures import ProcessPoolExecutor


def _jitter_one(task):
    value, child_seed = task
    rng = np.random.default_rng(child_seed)
    return value + rng.random()


def jitter_all(items, seed):
    ss = np.random.SeedSequence(seed)
    tasks = list(zip(items, ss.spawn(len(items))))
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_jitter_one, tasks))
