"""Clean DET302: listings are sorted before use."""
import os


def entries(path):
    return [name for name in sorted(os.listdir(path))]
