"""Clean DET201: the simulated clock is passed in."""


def stamp(record, now):
    record["at"] = now
    return record
