"""DTY801 clean: both branches pin the same dtype."""

import numpy as np


def scores_for(n, compact):
    if compact:
        scores = np.zeros(n, dtype=np.float64)
    else:
        scores = np.zeros(n)
    return scores * 2.0
