"""Flagged DET103: the stdlib random module is banned."""
import random


def pick(items):
    return random.choice(items)
