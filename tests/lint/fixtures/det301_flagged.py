"""Flagged DET301: set iteration order is hash-salted."""


def titles(keywords):
    return [k.title() for k in set(keywords)]
