"""Flagged PAR401: worker rebinds module state via global."""
from concurrent.futures import ProcessPoolExecutor

_CALLS = 0


def work(item):
    global _CALLS
    _CALLS = _CALLS + 1
    return item


def run(items):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(work, items))
