"""RNG703 clean: rejection sampling replays from its own stream."""

import numpy as np
from concurrent.futures import ProcessPoolExecutor


def work(task):
    seed_a, seed_b = task
    rng_a = np.random.default_rng(seed_a)
    rng_b = np.random.default_rng(seed_b)
    out = []
    for _ in range(8):
        u = rng_a.random()
        if u < 0.5:
            out.append(rng_a.normal())
    out.append(rng_b.random())
    return out


def run(tasks):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(work, tasks))
