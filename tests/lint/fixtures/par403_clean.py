"""Clean PAR403: each worker opens its own file handle."""
from concurrent.futures import ProcessPoolExecutor


def work(item):
    with open(f"worker-{item}.log", "a") as log:
        log.write(f"{item}\n")
    return item


def run(items):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(work, items))
