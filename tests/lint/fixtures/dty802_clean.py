"""DTY802 clean: the accumulator dtype is part of the call."""

import numpy as np


def offsets(n):
    gaps = np.ones(n)
    return np.cumsum(gaps, dtype=np.float64)


def counts(ids, n):
    hits = np.zeros(n, dtype=np.int64)
    return hits.sum()
