"""NOQ901 flagged: the suppression outlived the violation it excused."""

import math


def area(radius):
    return math.pi * radius * radius  # repro: noqa[DET201] -- stale
