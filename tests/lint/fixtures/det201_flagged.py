"""Flagged DET201: host clock read in simulation code."""
import time


def stamp(record):
    record["at"] = time.time()
    return record
