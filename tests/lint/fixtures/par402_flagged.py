"""Flagged PAR402: worker reads a module-level mutable dict."""
from concurrent.futures import ProcessPoolExecutor

_CACHE = {}


def work(item):
    if item in _CACHE:
        return _CACHE[item]
    return item * 2


def run(items):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(work, items))
