"""Clean DET202: timestamps derive from config epochs."""
from datetime import datetime


def banner(epoch_seconds):
    return f"generated {datetime.fromtimestamp(epoch_seconds)}"
