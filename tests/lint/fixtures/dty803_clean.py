"""DTY803 clean: tie order pinned with a stable sort."""

import numpy as np


def order(keys):
    return np.argsort(keys, kind="stable")


def order_rows(keys):
    return np.sort(keys, kind="stable")
