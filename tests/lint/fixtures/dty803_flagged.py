"""DTY803 flagged: non-stable argsort in an engine merge path."""

import numpy as np


def order(keys):
    return np.argsort(keys)
