"""Clean PAR402: shared state is passed in as an argument."""
from concurrent.futures import ProcessPoolExecutor


def work(task):
    item, cache = task
    return cache.get(item, item * 2)


def run(items, cache):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(work, [(i, dict(cache)) for i in items]))
