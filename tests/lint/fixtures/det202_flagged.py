"""Flagged DET202: run date baked into output."""
from datetime import datetime


def banner():
    return f"generated {datetime.now()}"
