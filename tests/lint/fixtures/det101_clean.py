"""Clean DET101: the generator is pinned to a seed."""
import numpy as np


def jitter(n, seed):
    rng = np.random.default_rng(seed)
    return rng.random(n)
