"""Clean DET102: new-style Generator API only."""
import numpy as np


def noise(n, seed):
    return np.random.default_rng(seed).normal(size=n)
