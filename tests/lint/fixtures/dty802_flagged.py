"""DTY802 flagged: float cumsum in an engine module, accumulator implicit."""

import numpy as np


def offsets(n):
    gaps = np.ones(n)
    return np.cumsum(gaps)
