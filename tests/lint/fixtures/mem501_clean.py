"""MEM501 clean: mmap_mode stated explicitly, eager read opted in visibly."""

import numpy as np


def load_trace_mapped(path):
    return np.load(path, mmap_mode="r", allow_pickle=False)


def load_trace_eager(path):
    # The eager read is the explicit, reviewable opt-in.
    return np.load(path, mmap_mode=None, allow_pickle=False)
