"""Clean DET103: numpy generator threaded as a parameter."""


def pick(items, rng):
    return items[int(rng.integers(len(items)))]
