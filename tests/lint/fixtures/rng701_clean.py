"""RNG701 clean: every consumer gets its own spawned child."""

import numpy as np


def make_shards(seed):
    ss = np.random.SeedSequence(seed)
    children = ss.spawn(2)
    rng_a = np.random.default_rng(children[0])
    rng_b = np.random.default_rng(children[1])
    return rng_a, rng_b


def make_shards_looped(seed, n):
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
