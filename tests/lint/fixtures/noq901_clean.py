"""NOQ901 clean: the suppression still suppresses a real finding."""

import time


def stamp():
    return time.time()  # repro: noqa[DET201] -- report filenames want wall clock
