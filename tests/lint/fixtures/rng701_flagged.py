"""RNG701 flagged: one spawned child feeds two 'independent' shards."""

import numpy as np


def make_shards(seed):
    ss = np.random.SeedSequence(seed)
    children = ss.spawn(2)
    rng_a = np.random.default_rng(children[0])
    rng_b = np.random.default_rng(children[0])
    return rng_a, rng_b
