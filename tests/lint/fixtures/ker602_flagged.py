"""Import of the removed repro.core.arrays shim (all three spellings)."""

import repro.core.arrays
from repro.core import arrays
from repro.core.arrays import segmented_arange

__all__ = ["repro", "arrays", "segmented_arange"]
