"""Semantics of the dataflow rule families: RNG7xx, DTY8xx, NOQ901.

Fixture pairs prove each rule fires/passes once; these tests pin the
*boundaries* -- the legitimate idioms each rule must not flag (same
stream rejection sampling, scalar accumulators, exclusive branches)
and the policy interactions (selection-aware suppression audit).
"""

from repro.lint import check_source
from repro.lint.framework import all_rules, rule_for

ENGINE = "src/repro/synthesis/columnar_engine.py"
PLAIN = "src/repro/analysis/active.py"


def codes(src: str, path: str = "x.py", rules=None):
    return {f.code for f in check_source(src, path=path, rules=rules)}


class TestRng701:
    def test_same_child_consumed_twice_flagged(self):
        src = (
            "import numpy as np\n"
            "def shards(seed):\n"
            "    children = np.random.SeedSequence(seed).spawn(2)\n"
            "    a = np.random.default_rng(children[0])\n"
            "    b = np.random.default_rng(children[0])\n"
            "    return a, b\n"
        )
        assert "RNG701" in codes(src)

    def test_distinct_children_clean(self):
        src = (
            "import numpy as np\n"
            "def shards(seed):\n"
            "    children = np.random.SeedSequence(seed).spawn(2)\n"
            "    a = np.random.default_rng(children[0])\n"
            "    b = np.random.default_rng(children[1])\n"
            "    return a, b\n"
        )
        assert "RNG701" not in codes(src)

    def test_exclusive_branches_may_share_a_child(self):
        # Only one branch executes per run: no co-firing, no reuse.
        src = (
            "import numpy as np\n"
            "def shard(seed, fast):\n"
            "    children = np.random.SeedSequence(seed).spawn(1)\n"
            "    if fast:\n"
            "        rng = np.random.default_rng(children[0])\n"
            "    else:\n"
            "        rng = np.random.default_rng(children[0])\n"
            "    return rng\n"
        )
        assert "RNG701" not in codes(src)

    def test_loop_variable_consumed_once_per_iteration_clean(self):
        src = (
            "import numpy as np\n"
            "def shards(seed, n):\n"
            "    out = []\n"
            "    for child in np.random.SeedSequence(seed).spawn(n):\n"
            "        out.append(np.random.default_rng(child))\n"
            "    return out\n"
        )
        assert "RNG701" not in codes(src)

    def test_loop_variable_consumed_twice_flagged(self):
        src = (
            "import numpy as np\n"
            "def shards(seed, n):\n"
            "    out = []\n"
            "    for child in np.random.SeedSequence(seed).spawn(n):\n"
            "        out.append((np.random.default_rng(child),\n"
            "                    np.random.default_rng(child)))\n"
            "    return out\n"
        )
        assert "RNG701" in codes(src)


class TestRng702:
    def test_lambda_capture_flagged(self):
        src = (
            "import numpy as np\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(items, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(lambda x: x + rng.random(), items))\n"
        )
        assert "RNG702" in codes(src)

    def test_nested_def_capture_flagged(self):
        src = (
            "import numpy as np\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(items, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    def jitter(x):\n"
            "        return x + rng.random()\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(jitter, items))\n"
        )
        assert "RNG702" in codes(src)

    def test_closure_without_rng_clean(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(items, k):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(lambda x: x + k, items))\n"
        )
        assert "RNG702" not in codes(src)

    def test_module_level_worker_clean(self):
        src = (
            "import numpy as np\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def work(seed):\n"
            "    return np.random.default_rng(seed).random()\n"
            "def run(seeds):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, seeds))\n"
        )
        assert "RNG702" not in codes(src)


class TestRng703:
    WORKER_PRELUDE = (
        "import numpy as np\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
    )
    DISPATCH = (
        "def run(tasks):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(work, tasks))\n"
    )

    def test_cross_stream_gated_draw_flagged(self):
        src = self.WORKER_PRELUDE + (
            "def work(task):\n"
            "    sa, sb = task\n"
            "    rng_a = np.random.default_rng(sa)\n"
            "    rng_b = np.random.default_rng(sb)\n"
            "    if rng_a.random() < 0.5:\n"
            "        return rng_b.normal()\n"
            "    return 0.0\n"
        ) + self.DISPATCH
        assert "RNG703" in codes(src)

    def test_same_stream_rejection_loop_clean(self):
        src = self.WORKER_PRELUDE + (
            "def work(task):\n"
            "    sa, sb = task\n"
            "    rng_a = np.random.default_rng(sa)\n"
            "    rng_b = np.random.default_rng(sb)\n"
            "    u = rng_a.random()\n"
            "    while u < 0.5:\n"
            "        u = rng_a.random()\n"
            "    return u + rng_b.random()\n"
        ) + self.DISPATCH
        assert "RNG703" not in codes(src)

    def test_config_gated_draw_clean(self):
        src = self.WORKER_PRELUDE + (
            "def work(task):\n"
            "    sa, sb, mode = task\n"
            "    rng_a = np.random.default_rng(sa)\n"
            "    rng_b = np.random.default_rng(sb)\n"
            "    if mode:\n"
            "        return rng_b.normal()\n"
            "    return rng_a.random()\n"
        ) + self.DISPATCH
        assert "RNG703" not in codes(src)

    def test_non_worker_function_not_flagged(self):
        # Same body, but never dispatched to a pool: sequential replay
        # is deterministic, the interleave is harmless.
        src = (
            "import numpy as np\n"
            "def analyze(sa, sb):\n"
            "    rng_a = np.random.default_rng(sa)\n"
            "    rng_b = np.random.default_rng(sb)\n"
            "    if rng_a.random() < 0.5:\n"
            "        return rng_b.normal()\n"
            "    return 0.0\n"
        )
        assert "RNG703" not in codes(src)


class TestDty801:
    def test_branch_divergent_dtype_flagged_everywhere(self):
        src = (
            "import numpy as np\n"
            "def f(n, compact):\n"
            "    if compact:\n"
            "        x = np.zeros(n, dtype=np.float32)\n"
            "    else:\n"
            "        x = np.zeros(n)\n"
            "    return x * 2\n"
        )
        assert "DTY801" in codes(src, path=PLAIN)

    def test_matching_dtypes_clean(self):
        src = (
            "import numpy as np\n"
            "def f(n, compact):\n"
            "    if compact:\n"
            "        x = np.zeros(n, dtype=np.float64)\n"
            "    else:\n"
            "        x = np.ones(n)\n"
            "    return x * 2\n"
        )
        assert "DTY801" not in codes(src, path=PLAIN)

    def test_scalar_accumulator_idiom_clean(self):
        # `total = 0` then `total = total + v`: constants and non-call
        # redefinitions make no dtype claim -- the classic loop must
        # never be flagged.
        src = (
            "def f(xs):\n"
            "    total = 0\n"
            "    for x in xs:\n"
            "        total = total + x\n"
            "    return total\n"
        )
        assert "DTY801" not in codes(src)

    def test_unknown_dtype_never_flagged(self):
        src = (
            "def f(make_a, make_b, c):\n"
            "    if c:\n"
            "        x = make_a()\n"
            "    else:\n"
            "        x = make_b()\n"
            "    return x\n"
        )
        assert "DTY801" not in codes(src)


class TestDty802:
    def test_float_cumsum_flagged_only_in_engines(self):
        src = (
            "import numpy as np\n"
            "def f(n):\n"
            "    gaps = np.ones(n)\n"
            "    return np.cumsum(gaps)\n"
        )
        assert "DTY802" in codes(src, path=ENGINE)
        assert "DTY802" not in codes(src, path=PLAIN)

    def test_explicit_dtype_clean(self):
        src = (
            "import numpy as np\n"
            "def f(n):\n"
            "    gaps = np.ones(n)\n"
            "    return np.cumsum(gaps, dtype=np.float64)\n"
        )
        assert "DTY802" not in codes(src, path=ENGINE)

    def test_int_array_sum_clean(self):
        src = (
            "import numpy as np\n"
            "def f(ids, n):\n"
            "    hits = np.zeros(n, dtype=np.int64)\n"
            "    return hits.sum()\n"
        )
        assert "DTY802" not in codes(src, path=ENGINE)

    def test_repo_sample_protocol_is_float(self):
        # `.sample(rng, ...)` is this repo's distribution protocol and
        # returns float64: a cumsum over it must be flagged.
        src = (
            "import numpy as np\n"
            "def f(dist, rng, n):\n"
            "    gaps = np.clip(dist.sample(rng, size=n), 0.0, 1.0)\n"
            "    return np.cumsum(gaps)\n"
        )
        assert "DTY802" in codes(src, path=ENGINE)


class TestDty803:
    def test_argsort_flagged_only_in_engines(self):
        src = "import numpy as np\ndef f(k):\n    return np.argsort(k)\n"
        assert "DTY803" in codes(src, path=ENGINE)
        assert "DTY803" not in codes(src, path=PLAIN)

    def test_stable_kind_clean(self):
        src = ("import numpy as np\n"
               "def f(k):\n    return np.argsort(k, kind='stable')\n")
        assert "DTY803" not in codes(src, path=ENGINE)

    def test_quicksort_kind_flagged(self):
        src = ("import numpy as np\n"
               "def f(k):\n    return np.argsort(k, kind='quicksort')\n")
        assert "DTY803" in codes(src, path=ENGINE)

    def test_list_sort_method_not_flagged(self):
        src = "def f(xs):\n    xs.sort()\n    return xs\n"
        assert "DTY803" not in codes(src, path=ENGINE)

    def test_lexsort_is_always_stable(self):
        src = ("import numpy as np\n"
               "def f(a, b):\n    return np.lexsort((a, b))\n")
        assert "DTY803" not in codes(src, path=ENGINE)


class TestNoq901:
    def test_unused_suppression_flagged(self):
        src = "x = 1  # repro: noqa[DET101]\n"
        assert codes(src) == {"NOQ901"}

    def test_used_suppression_clean(self):
        src = ("import numpy as np\n"
               "rng = np.random.default_rng()  # repro: noqa[DET101]\n")
        assert codes(src) == set()

    def test_unknown_code_always_flagged(self):
        src = "x = 1  # repro: noqa[ZZZ999]\n"
        assert "NOQ901" in codes(src)

    def test_selection_aware_not_judged_when_rule_did_not_run(self):
        # Under --select DET301 the DET101 rule never ran, so its
        # suppression cannot be called unused.
        src = ("import numpy as np\n"
               "rng = np.random.default_rng()  # repro: noqa[DET101]\n")
        selected = [rule_for("DET301"), rule_for("NOQ901")]
        assert codes(src, rules=selected) == set()

    def test_bare_noqa_not_judged_under_partial_selection(self):
        src = "x = 1  # repro: noqa\n"
        selected = [rule_for("DET301"), rule_for("NOQ901")]
        assert codes(src, rules=selected) == set()

    def test_bare_noqa_judged_under_full_run(self):
        src = "x = 1  # repro: noqa\n"
        assert codes(src) == {"NOQ901"}

    def test_noq901_opt_out(self):
        src = "x = 1  # repro: noqa[DET101,NOQ901] -- kept intentionally\n"
        assert codes(src) == set()

    def test_severity_is_warning(self):
        assert rule_for("NOQ901").severity.value == "warning"
        src = "x = 1  # repro: noqa[DET101]\n"
        findings = check_source(src)
        assert all(f.severity.value == "warning" for f in findings)


def test_all_new_rules_registered():
    registered = {cls.code for cls in all_rules()}
    assert {"RNG701", "RNG702", "RNG703",
            "DTY801", "DTY802", "DTY803", "NOQ901"} <= registered
