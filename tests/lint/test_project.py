"""Project index: module summaries, worker closure, mtime caching."""

import ast

from repro.lint.project import (
    ProjectIndex,
    _SUMMARY_CACHE,
    summarize_module,
)

WORKER_MOD = """\
import numpy as np

def helper(rng):
    return rng.random()

def work(task):
    rng = np.random.default_rng(task)
    return helper(rng)

def untouched(x):
    return x + 1
"""

DISPATCH_MOD = """\
from concurrent.futures import ProcessPoolExecutor
from repro_fake.workers import work

def run(tasks):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(work, tasks))
"""


def summaries():
    workers = summarize_module(ast.parse(WORKER_MOD),
                               "src/repro_fake/workers.py")
    dispatch = summarize_module(ast.parse(DISPATCH_MOD),
                                "src/repro_fake/driver.py")
    return workers, dispatch


class TestModuleSummary:
    def test_rng_params_detected_by_name_and_annotation(self):
        src = ("import numpy as np\n"
               "def by_name(rng):\n    return rng\n"
               "def by_annot(g: np.random.Generator):\n    return g\n"
               "def neither(x):\n    return x\n")
        summary = summarize_module(ast.parse(src), "src/m.py")
        assert summary.function("by_name").rng_params == ("rng",)
        assert summary.function("by_annot").rng_params == ("g",)
        assert summary.function("neither").rng_params == ()

    def test_returns_rng_from_annotation_and_value(self):
        src = ("import numpy as np\n"
               "def make(seed) -> np.random.Generator:\n"
               "    return np.random.default_rng(seed)\n"
               "def make_untyped(seed):\n"
               "    return np.random.default_rng(seed)\n")
        summary = summarize_module(ast.parse(src), "src/m.py")
        assert summary.function("make").returns_rng
        assert summary.function("make_untyped").returns_rng

    def test_dispatches_recorded(self):
        _, dispatch = summaries()
        assert "work" in dispatch.function("run").dispatches

    def test_module_name_strips_src_prefix(self):
        summary = summarize_module(ast.parse("x = 1\n"),
                                   "src/repro_fake/workers.py")
        assert summary.module == "repro_fake.workers"


class TestWorkerClosure:
    def test_dispatched_function_is_worker(self):
        index = ProjectIndex(list(summaries()))
        assert index.is_worker("src/repro_fake/workers.py", "work")

    def test_closure_reaches_transitive_callee(self):
        index = ProjectIndex(list(summaries()))
        assert index.is_worker("src/repro_fake/workers.py", "helper")

    def test_uninvolved_function_is_not_worker(self):
        index = ProjectIndex(list(summaries()))
        assert not index.is_worker("src/repro_fake/workers.py", "untouched")

    def test_rng_returning_functions_listed(self):
        src = ("import numpy as np\n"
               "def make(seed):\n    return np.random.default_rng(seed)\n")
        summary = summarize_module(ast.parse(src), "src/m.py")
        index = ProjectIndex([summary])
        assert ("src/m.py", "make") in index.rng_returning_functions()


class TestMtimeCache:
    def test_build_caches_and_reuses_summaries(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("def f(rng):\n    return rng\n")
        before = dict(_SUMMARY_CACHE)
        try:
            index1 = ProjectIndex.build([(mod, "mod.py")])
            cached = _SUMMARY_CACHE[str(mod)][1]
            index2 = ProjectIndex.build([(mod, "mod.py")])
            # Same mtime: the second build reuses the identical object.
            assert index2.module_for("mod.py") is cached
            assert index1.module_for("mod.py") == cached
        finally:
            _SUMMARY_CACHE.clear()
            _SUMMARY_CACHE.update(before)

    def test_unparseable_file_skipped(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        index = ProjectIndex.build([(bad, "bad.py")])
        assert index.module_for("bad.py") is None
