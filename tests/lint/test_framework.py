"""Framework semantics: noqa suppression, registry, ordering, parsing."""

import pytest

from repro.lint import Finding, LintRule, check_source, register
from repro.lint.framework import SYNTAX_ERROR_CODE


class TestNoqa:
    FLAGGED = "import numpy as np\nrng = np.random.default_rng()\n"

    def test_bare_noqa_suppresses_everything_on_line(self):
        src = ("import numpy as np\n"
               "rng = np.random.default_rng()  # repro: noqa\n")
        assert check_source(src) == []

    def test_coded_noqa_suppresses_matching_code(self):
        src = ("import numpy as np\n"
               "rng = np.random.default_rng()  # repro: noqa[DET101] -- demo\n")
        assert check_source(src) == []

    def test_coded_noqa_ignores_other_codes(self):
        # The wrong-code suppression leaves DET101 standing AND is
        # itself flagged as unused by the NOQ901 audit.
        src = ("import numpy as np\n"
               "rng = np.random.default_rng()  # repro: noqa[DET301]\n")
        assert {f.code for f in check_source(src)} == {"DET101", "NOQ901"}

    def test_noqa_on_other_line_does_not_leak(self):
        src = ("import numpy as np  # repro: noqa\n"
               "rng = np.random.default_rng()\n")
        assert {f.code for f in check_source(src)} == {"DET101", "NOQ901"}

    def test_noqa_in_docstring_is_documentation_not_suppression(self):
        src = ('"""Use # repro: noqa[DET101] to suppress."""\n'
               "import numpy as np\n"
               "rng = np.random.default_rng()\n")
        assert {f.code for f in check_source(src)} == {"DET101"}

    def test_noqa_multiple_codes(self):
        src = ("import time, uuid\n"
               "x = (time.time(), uuid.uuid4())"
               "  # repro: noqa[DET201, DET203]\n")
        assert check_source(src) == []


class TestRegistry:
    def test_bad_code_rejected(self):
        with pytest.raises(ValueError, match="AAAnnn"):
            @register
            class Bad(LintRule):
                code = "X1"
                name = "bad"

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            @register
            class Clash(LintRule):
                code = "DET101"
                name = "clash"

    def test_missing_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            @register
            class NoName(LintRule):
                code = "ZZZ999"


class TestOutputContracts:
    def test_findings_sorted_by_path_line_col_code(self):
        src = ("import numpy as np\n"
               "import random\n"
               "a = np.random.default_rng()\n"
               "b = np.random.rand(3)\n")
        findings = check_source(src, path="x.py")
        assert findings == sorted(findings)
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_finding_orders_as_path_line_col_code_tuple(self):
        early = Finding("a.py", 1, 1, "DET999", "m")
        late = Finding("b.py", 1, 1, "DET101", "m")
        assert early < late  # path dominates code

    def test_syntax_error_reported_not_raised(self):
        findings = check_source("def broken(:\n", path="bad.py")
        assert [f.code for f in findings] == [SYNTAX_ERROR_CODE]
        assert "syntax error" in findings[0].message

    def test_render_is_editor_clickable(self):
        finding = Finding("src/x.py", 12, 3, "DET101", "boom")
        assert finding.render().startswith("src/x.py:12:3: DET101 ")
