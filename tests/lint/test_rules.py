"""Per-rule fixture battery: one flagged and one clean snippet per code.

The fixtures under ``tests/lint/fixtures/`` are deliberately broken
(or deliberately correct) minimal repros; they are excluded from the
repo-wide lint run by the pyproject ``exclude`` pattern and only ever
parsed by these tests, never imported.
"""

from pathlib import Path

import pytest

from repro.lint import all_rules, check_file, check_source

FIXTURES = Path(__file__).parent / "fixtures"

ALL_CODES = sorted(cls.code for cls in all_rules())

#: Rules scoped to path fragments lint their fixtures under the path
#: the fixture stands in for, not the fixture file's own location.
VIRTUAL_PATHS = {
    "KER601": "src/repro/synthesis/columnar_engine.py",
    "DTY802": "src/repro/agents/user_model.py",
    "DTY803": "src/repro/gnutella/columnar_overlay.py",
}


def codes_in(path: Path, code: str = ""):
    virtual = VIRTUAL_PATHS.get(code)
    if virtual:
        findings = check_source(path.read_text(encoding="utf-8"), path=virtual)
        return {finding.code for finding in findings}
    return {finding.code for finding in check_file(path)}


@pytest.mark.parametrize("code", ALL_CODES)
def test_every_rule_has_fixture_pair(code):
    assert (FIXTURES / f"{code.lower()}_flagged.py").is_file()
    assert (FIXTURES / f"{code.lower()}_clean.py").is_file()


@pytest.mark.parametrize("code", ALL_CODES)
def test_flagged_fixture_triggers_exactly_its_code(code):
    found = codes_in(FIXTURES / f"{code.lower()}_flagged.py", code)
    assert found == {code}, (
        f"{code} fixture should trigger only {code}, got {sorted(found)}"
    )


@pytest.mark.parametrize("code", ALL_CODES)
def test_clean_fixture_passes(code):
    found = codes_in(FIXTURES / f"{code.lower()}_clean.py", code)
    assert found == set(), f"clean fixture for {code} flagged: {sorted(found)}"


def test_rule_metadata_complete():
    for cls in all_rules():
        assert cls.name and cls.rationale, f"{cls.code} missing name/rationale"


class TestRngRules:
    def test_aliased_import_still_resolves(self):
        src = "import numpy.random as npr\nrng = npr.default_rng()\n"
        assert {f.code for f in check_source(src)} == {"DET101"}

    def test_from_import_default_rng(self):
        src = "from numpy.random import default_rng\nrng = default_rng()\n"
        assert {f.code for f in check_source(src)} == {"DET101"}

    def test_seeded_seedsequence_is_clean(self):
        src = (
            "import numpy as np\n"
            "ss = np.random.SeedSequence(7)\n"
            "rngs = [np.random.default_rng(s) for s in ss.spawn(4)]\n"
        )
        assert check_source(src) == []

    def test_default_rng_with_none_seed_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng(None)\n"
        assert {f.code for f in check_source(src)} == {"DET101"}

    def test_legacy_from_import_flagged(self):
        src = "from numpy.random import randint\n"
        assert {f.code for f in check_source(src)} == {"DET102"}

    def test_unrelated_random_attribute_not_flagged(self):
        # `self.random.choice` is not numpy's module: must not resolve.
        src = "def pick(self):\n    return self.random.choice([1])\n"
        assert check_source(src) == []


class TestHashOrderRules:
    def test_for_loop_over_set_flagged(self):
        src = "for item in {1, 2, 3}:\n    print(item)\n"
        assert {f.code for f in check_source(src)} == {"DET301"}

    def test_set_union_iteration_flagged(self):
        src = "def merge(a, b):\n    return [x for x in set(a) | set(b)]\n"
        assert {f.code for f in check_source(src)} == {"DET301"}

    def test_order_insensitive_reducers_clean(self):
        src = "def total(xs):\n    return sum(set(xs)) + max(set(xs))\n"
        assert check_source(src) == []

    def test_membership_test_clean(self):
        src = "def has(x, xs):\n    return x in set(xs)\n"
        assert check_source(src) == []

    def test_join_over_set_flagged(self):
        src = "def label(xs):\n    return ','.join(set(xs))\n"
        assert {f.code for f in check_source(src)} == {"DET301"}

    def test_pathlib_glob_flagged_and_sorted_clean(self):
        flagged = "def scan(root):\n    return list(root.glob('*.npz'))\n"
        clean = "def scan(root):\n    return sorted(root.glob('*.npz'))\n"
        assert {f.code for f in check_source(flagged)} == {"DET302"}
        assert check_source(clean) == []


class TestWorkerRules:
    def test_initializer_pattern_is_sanctioned(self):
        # Priming per-process state in initializer= (the registry's
        # _WORKER_CTX pattern) must not be treated as a worker hazard.
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_CTX = None\n"
            "def _init(cfg):\n"
            "    global _CTX\n"
            "    _CTX = cfg\n"
            "def work(item):\n"
            "    return (_CTX, item)\n"
            "def run(items, cfg):\n"
            "    with ProcessPoolExecutor(initializer=_init,\n"
            "                             initargs=(cfg,)) as pool:\n"
            "        return list(pool.map(work, items))\n"
        )
        assert check_source(src) == []

    def test_local_shadow_not_flagged(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_CACHE = {}\n"
            "def work(item):\n"
            "    _CACHE = {}\n"
            "    return _CACHE.get(item)\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, items))\n"
        )
        assert check_source(src) == []

    def test_process_target_keyword_detected(self):
        src = (
            "import multiprocessing\n"
            "_RESULTS = []\n"
            "def work(item):\n"
            "    _RESULTS.append(item)\n"
            "def run(item):\n"
            "    p = multiprocessing.Process(target=work, args=(item,))\n"
            "    p.start()\n"
        )
        assert {f.code for f in check_source(src)} == {"PAR402"}

    def test_non_worker_function_may_use_globals(self):
        src = "_CACHE = {}\ndef lookup(key):\n    return _CACHE.get(key)\n"
        assert check_source(src) == []


class TestMemoryRules:
    STREAMING = "src/repro/analysis/streaming.py"
    ORDINARY = "src/repro/experiments/exp_passive.py"

    def test_np_load_without_mmap_mode_flagged_everywhere(self):
        src = "import numpy as np\ndef read(p):\n    return np.load(p, allow_pickle=False)\n"
        assert {f.code for f in check_source(src, path=self.ORDINARY)} == {"MEM501"}
        assert {f.code for f in check_source(src, path=self.STREAMING)} == {"MEM501"}

    def test_explicit_mmap_mode_clean_even_when_none(self):
        # mmap_mode=None is the visible opt-in to an eager read; the
        # rule wants the decision stated, not a particular value.
        src = (
            "import numpy as np\n"
            "def read(p):\n"
            "    a = np.load(p, mmap_mode='r', allow_pickle=False)\n"
            "    b = np.load(p, mmap_mode=None, allow_pickle=False)\n"
            "    return a, b\n"
        )
        assert check_source(src, path=self.ORDINARY) == []
        assert check_source(src, path=self.STREAMING) == []

    def test_tolist_flagged_only_in_streaming_modules(self):
        src = "def expand(col):\n    return col.tolist()\n"
        assert {f.code for f in check_source(src, path=self.STREAMING)} == {"MEM501"}
        assert check_source(src, path=self.ORDINARY) == []

    def test_list_over_column_flagged_only_in_streaming_modules(self):
        src = "def expand(block):\n    return list(block.start)\n"
        assert {f.code for f in check_source(src, path=self.STREAMING)} == {"MEM501"}
        assert check_source(src, path=self.ORDINARY) == []

    def test_list_literal_and_multiarg_calls_not_flagged(self):
        # Only list(name)/list(attr) materializes a column; constructors
        # over literals or zip() results are how bounded rows are built.
        src = (
            "def rows(a, b):\n"
            "    empty = list()\n"
            "    pairs = list(zip(a, b))\n"
            "    return empty, pairs\n"
        )
        assert check_source(src, path=self.STREAMING) == []

    def test_noqa_with_justification_suppresses(self):
        src = (
            "def expand(col):\n"
            "    return col.tolist()  "
            "# repro: noqa[MEM501] -- record views are the explicit opt-out\n"
        )
        assert check_source(src, path=self.STREAMING) == []


class TestKernelRules:
    ENGINE = "src/repro/core/generator_columnar.py"
    ORDINARY = "src/repro/analysis/active.py"

    def test_raw_searchsorted_flagged_only_in_engines(self):
        src = (
            "import numpy as np\n"
            "def draw(cum, rng, n):\n"
            "    return np.searchsorted(cum, rng.random(n), side='left')\n"
        )
        assert {f.code for f in check_source(src, path=self.ENGINE)} == {"KER601"}
        assert check_source(src, path=self.ORDINARY) == []

    def test_searchsorted_method_form_flagged(self):
        src = (
            "def draw(cum, rng, n):\n"
            "    return cum.searchsorted(rng.random(n))\n"
        )
        assert {f.code for f in check_source(src, path=self.ENGINE)} == {"KER601"}

    def test_seed_sequence_annotation_not_flagged(self):
        # Only the *call* forks the spawn layout; typing a parameter as
        # SeedSequence is how engines accept kernel-spawned streams.
        src = (
            "import numpy as np\n"
            "def shard(seed_seq: np.random.SeedSequence):\n"
            "    return seed_seq.spawn(4)\n"
        )
        assert check_source(src, path=self.ENGINE) == []

    def test_pool_executor_flagged_only_in_engines(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def fan_out(fn, items):\n"
            "    with ProcessPoolExecutor(max_workers=2) as pool:\n"
            "        return sorted(pool.map(fn, items))\n"
        )
        assert {f.code for f in check_source(src, path=self.ENGINE)} == {"KER601"}
        assert check_source(src, path="src/repro/experiments/registry.py") == []

    def test_kernels_package_exempt(self):
        src = (
            "import numpy as np\n"
            "def searchsorted_left(cdf, u):\n"
            "    return np.searchsorted(cdf, u, side='left')\n"
        )
        assert check_source(src, path="src/repro/core/kernels/sampling.py") == []

    def test_noqa_with_justification_suppresses(self):
        src = (
            "import numpy as np\n"
            "def cdf_at(a, grid):\n"
            "    return np.searchsorted(a, grid, side='right')  "
            "# repro: noqa[KER601] -- CDF statistic, not a draw\n"
        )
        assert check_source(src, path=self.ENGINE) == []


class TestShimRemoval:
    """KER602: the deleted repro.core.arrays shim must stay deleted."""

    def test_module_is_actually_gone(self):
        import importlib.util

        assert importlib.util.find_spec("repro.core.arrays") is None

    def test_every_import_spelling_flagged(self):
        for src in (
            "import repro.core.arrays\n",
            "import repro.core.arrays as arrays\n",
            "from repro.core import arrays\n",
            "from repro.core.arrays import segmented_arange\n",
        ):
            assert {f.code for f in check_source(src)} == {"KER602"}, src

    def test_kernels_imports_are_clean(self):
        src = "from repro.core.kernels import segmented_arange\n"
        assert check_source(src) == []

    def test_relative_import_of_other_arrays_module_not_flagged(self):
        # A package-local `from . import arrays` elsewhere is not the shim.
        src = "from . import arrays\n"
        assert check_source(src) == []
