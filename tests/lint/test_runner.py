"""Runner policy: discovery, baselines, allowances, output stability."""

import json
from pathlib import Path

import pytest

from repro.lint import (
    LintConfig,
    RULESET_VERSION,
    format_json,
    format_text,
    iter_python_files,
    load_baseline,
    load_config,
    run_lint,
    write_baseline_file,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

FLAGGED = "import numpy as np\nrng = np.random.default_rng()\n"
CLEAN = "import numpy as np\nrng = np.random.default_rng(7)\n"


@pytest.fixture
def project(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "dirty.py").write_text(FLAGGED)
    (tmp_path / "pkg" / "ok.py").write_text(CLEAN)
    return tmp_path


class TestDiscovery:
    def test_files_discovered_sorted_and_deduped(self, project):
        files = iter_python_files(["pkg", "pkg/ok.py"], project, LintConfig())
        assert [rel for _, rel in files] == ["pkg/dirty.py", "pkg/ok.py"]

    def test_exclude_patterns_apply(self, project):
        config = LintConfig(exclude=("pkg/dirty*",))
        files = iter_python_files(["pkg"], project, LintConfig()), \
            iter_python_files(["pkg"], project, config)
        assert len(files[0]) == 2 and len(files[1]) == 1


class TestPolicy:
    def test_findings_fail_run(self, project):
        report = run_lint(["pkg"], project, baseline={})
        assert [f.code for f in report.findings] == ["DET101"]
        assert report.exit_code == 1

    def test_select_restricts_rules(self, project):
        config = LintConfig(select=("DET301",))
        report = run_lint(["pkg"], project, config=config, baseline={})
        assert report.findings == [] and report.exit_code == 0

    def test_ignore_drops_code(self, project):
        config = LintConfig(ignore=("DET101",))
        report = run_lint(["pkg"], project, config=config, baseline={})
        assert report.findings == []

    def test_per_path_allow_suppresses_and_counts(self, project):
        config = LintConfig(per_path_allow=(("pkg/dirty.py", ("DET101",)),))
        report = run_lint(["pkg"], project, config=config, baseline={})
        assert report.findings == [] and report.suppressed_by_allow == 1


class TestBaseline:
    def test_roundtrip_suppresses_then_reports_stale(self, project):
        strict = run_lint(["pkg"], project, baseline={})
        baseline_path = project / "lint-baseline.json"
        write_baseline_file(strict, baseline_path)

        budget = load_baseline(baseline_path)
        assert budget == {("pkg/dirty.py", "DET101"): 1}

        relaxed = run_lint(["pkg"], project, baseline=budget)
        assert relaxed.findings == []
        assert relaxed.suppressed_by_baseline == 1
        assert relaxed.exit_code == 0

        # Once the hazard is fixed, the entry is flagged as stale.
        (project / "pkg" / "dirty.py").write_text(CLEAN)
        fixed = run_lint(["pkg"], project, baseline=load_baseline(baseline_path))
        assert fixed.stale_baseline == [("pkg/dirty.py", "DET101")]
        assert "stale baseline entry" in format_text(fixed)

    def test_missing_baseline_is_strict(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"findings": []}')
        with pytest.raises(ValueError, match="malformed baseline"):
            load_baseline(bad)

    def test_committed_baseline_is_minimal(self):
        # The repo carries zero budgeted debt: the last entry
        # (workload_io's deliberately-eager from_npz) now states
        # mmap_mode=None explicitly.  Any new entry is new debt:
        # fix, don't baseline.
        budget = load_baseline(REPO_ROOT / "lint-baseline.json")
        assert budget == {}, (
            "repo baseline must stay empty (fix, don't baseline)"
        )


class TestPathResolution:
    def test_lint_from_subdirectory_resolves_against_cwd(self, project):
        # Invoked from pkg/ with a bare filename: the file is found
        # relative to the invocation directory, not the project root.
        report = run_lint(["dirty.py"], project, baseline={},
                          cwd=project / "pkg")
        assert [f.code for f in report.findings] == ["DET101"]
        assert report.findings[0].path == "pkg/dirty.py"

    def test_dot_from_subdirectory_lints_that_subtree(self, project):
        report = run_lint(["."], project, baseline={}, cwd=project / "pkg")
        assert report.files_scanned == 2
        assert {f.path for f in report.findings} == {"pkg/dirty.py"}

    def test_overlapping_args_report_each_finding_once(self, project):
        report = run_lint(["pkg", "pkg/dirty.py", "."], project,
                          baseline={}, cwd=project)
        assert [f.code for f in report.findings] == ["DET101"]
        assert report.files_scanned == 2

    def test_relative_and_absolute_spellings_dedupe(self, project):
        dirty = project / "pkg" / "dirty.py"
        report = run_lint([str(dirty), "pkg/dirty.py"], project,
                          baseline={}, cwd=project)
        assert len(report.findings) == 1

    def test_display_paths_are_root_relative_posix(self, project):
        files = iter_python_files([str(project / "pkg")], project,
                                  LintConfig())
        assert [rel for _, rel in files] == ["pkg/dirty.py", "pkg/ok.py"]

    def test_cwd_fallback_to_root_for_root_relative_args(self, project, tmp_path):
        # From an unrelated cwd, a root-relative arg still resolves.
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        report = run_lint(["pkg"], project, baseline={}, cwd=elsewhere)
        assert report.files_scanned == 2


class TestConfigEdgeCases:
    def test_allow_glob_matching_nothing_changes_nothing(self, project):
        config = LintConfig(per_path_allow=(("no/such/dir/*", ("DET101",)),))
        report = run_lint(["pkg"], project, config=config, baseline={})
        assert [f.code for f in report.findings] == ["DET101"]
        assert report.suppressed_by_allow == 0

    def test_select_and_ignore_of_same_code_ignore_wins(self, project):
        config = LintConfig(select=("DET101",), ignore=("DET101",))
        report = run_lint(["pkg"], project, config=config, baseline={})
        assert report.findings == []

    def test_prefix_select_enables_whole_family(self, project):
        config = LintConfig(select=("DET1",))
        assert config.enabled("DET101") and config.enabled("DET103")
        assert not config.enabled("DET301") and not config.enabled("RNG701")
        report = run_lint(["pkg"], project, config=config, baseline={})
        assert [f.code for f in report.findings] == ["DET101"]

    def test_prefix_ignore_beats_prefix_select(self, project):
        config = LintConfig(select=("DET",), ignore=("DET1",))
        assert not config.enabled("DET101")
        assert config.enabled("DET301")

    def test_stale_entry_for_deleted_file_reported_not_dropped(self, project):
        baseline_path = project / "lint-baseline.json"
        write_baseline_file(run_lint(["pkg"], project, baseline={}),
                            baseline_path)
        (project / "pkg" / "dirty.py").unlink()

        report = run_lint(["pkg"], project,
                          baseline=load_baseline(baseline_path))
        assert report.stale_baseline == [("pkg/dirty.py", "DET101")]
        assert report.stale_missing_files == [("pkg/dirty.py", "DET101")]
        assert "file no longer exists" in format_text(report)
        payload = json.loads(format_json(report))
        assert payload["stale_baseline"] == [
            {"path": "pkg/dirty.py", "code": "DET101", "file_exists": False}
        ]

    def test_stale_entry_for_surviving_file_annotated_differently(self, project):
        baseline_path = project / "lint-baseline.json"
        write_baseline_file(run_lint(["pkg"], project, baseline={}),
                            baseline_path)
        (project / "pkg" / "dirty.py").write_text(CLEAN)

        report = run_lint(["pkg"], project,
                          baseline=load_baseline(baseline_path))
        assert report.stale_baseline == [("pkg/dirty.py", "DET101")]
        assert report.stale_missing_files == []
        assert "no longer triggered" in format_text(report)


class TestJsonOutput:
    def test_json_is_stable_and_versioned(self, project):
        (project / "pkg" / "also.py").write_text(FLAGGED + "import random\n")
        report = run_lint(["pkg"], project, baseline={})
        payload = json.loads(format_json(report))
        assert payload["ruleset_version"] == RULESET_VERSION
        entries = [(f["path"], f["line"], f["col"], f["code"])
                   for f in payload["findings"]]
        assert entries == sorted(entries)
        # Byte-identical across repeated runs: CI diffs stay quiet.
        rerun = run_lint(["pkg"], project, baseline={})
        assert format_json(rerun) == format_json(report)

    def test_json_names_every_rule(self, project):
        payload = json.loads(format_json(run_lint(["pkg"], project, baseline={})))
        assert "DET101" in payload["rules"] and "PAR403" in payload["rules"]


class TestRepoIsClean:
    """The acceptance gate: the repo lints clean with the committed baseline."""

    def test_src_and_tests_lint_clean(self):
        config = load_config(REPO_ROOT)
        report = run_lint(["src", "tests"], REPO_ROOT, config=config)
        assert report.findings == [], format_text(report)
        assert report.stale_baseline == []

    def test_clean_even_without_the_baseline(self):
        # No hidden budgeted debt: the no-baseline run matches the
        # baselined one finding for finding (i.e. zero for zero).
        config = load_config(REPO_ROOT)
        report = run_lint(["src", "tests"], REPO_ROOT, config=config, baseline={})
        assert report.findings == [], format_text(report)

    def test_fixtures_are_excluded_by_config(self):
        config = load_config(REPO_ROOT)
        files = iter_python_files(["tests/lint"], REPO_ROOT, config)
        rels = [rel for _, rel in files]
        assert rels and all("fixtures" not in rel for rel in rels)
