"""Token-bucket rate controller, driven by a fake clock."""

import asyncio

import pytest

from repro.service.rate import TokenBucket


class FakeTime:
    """A clock that only advances when slept on."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    async def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


def make_bucket(rate, burst, faketime):
    return TokenBucket(rate, burst, clock=faketime.clock, sleep=faketime.sleep)


def run(coro):
    return asyncio.run(coro)


class TestTokenBucket:
    def test_burst_spends_without_waiting(self):
        ft = FakeTime()
        bucket = make_bucket(rate=100.0, burst=50.0, faketime=ft)
        assert run(bucket.acquire(50)) == 0.0
        assert ft.sleeps == []

    def test_waits_exactly_the_deficit(self):
        ft = FakeTime()
        bucket = make_bucket(rate=100.0, burst=10.0, faketime=ft)
        run(bucket.acquire(10))  # drain the burst
        waited = run(bucket.acquire(10))
        assert waited == pytest.approx(0.1)  # 10 tokens at 100/s
        assert ft.now == pytest.approx(0.1)

    def test_long_run_rate_converges(self):
        ft = FakeTime()
        bucket = make_bucket(rate=1000.0, burst=100.0, faketime=ft)

        async def drive():
            for _ in range(50):
                await bucket.acquire(100)

        run(drive())
        # 5000 events after a 100-token head start: ~4.9 s at 1000/s.
        assert ft.now == pytest.approx(4.9, rel=0.01)

    def test_oversized_request_runs_a_deficit(self):
        ft = FakeTime()
        bucket = make_bucket(rate=100.0, burst=10.0, faketime=ft)
        run(bucket.acquire(50))  # > burst: must not deadlock
        assert bucket.tokens < 0
        waited = run(bucket.acquire(10))
        assert waited > 0

    def test_refill_caps_at_burst(self):
        ft = FakeTime()
        bucket = make_bucket(rate=100.0, burst=10.0, faketime=ft)
        ft.now = 100.0  # a long idle period
        run(bucket.acquire(1))
        assert bucket.tokens == pytest.approx(9.0)

    def test_zero_events_is_free(self):
        ft = FakeTime()
        bucket = make_bucket(rate=1.0, burst=1.0, faketime=ft)
        assert run(bucket.acquire(0)) == 0.0

    def test_invalid_parameters_rejected(self):
        ft = FakeTime()
        with pytest.raises(ValueError):
            make_bucket(rate=0, burst=1, faketime=ft)
        with pytest.raises(ValueError):
            make_bucket(rate=1, burst=0, faketime=ft)
