"""Loadtest client against an in-process server."""

import asyncio

import pytest

from repro.service.loadtest import LoadtestConfig, run_loadtest
from repro.service.server import ServerConfig, WorkloadStreamServer
from repro.service.stream import StreamConfig

STREAM = StreamConfig(
    n_peers=80, seed=21, window_seconds=600.0, batch_sessions=32, n_frames=8
)


def run_cohort(stream, clients, *, stamps=False, codec=None):
    if codec is not None:
        stream = StreamConfig(
            n_peers=stream.n_peers, seed=stream.seed,
            window_seconds=stream.window_seconds,
            batch_sessions=stream.batch_sessions, n_frames=stream.n_frames,
            codec=codec,
        )

    async def scenario():
        server = WorkloadStreamServer(
            stream, ServerConfig(start_clients=clients, stamps=stamps)
        )
        await server.start()
        serving = asyncio.create_task(server.serve())
        report = await run_loadtest(
            LoadtestConfig(port=server.port, clients=clients)
        )
        stats = await asyncio.wait_for(serving, 30.0)
        return report, stats

    return asyncio.run(scenario())


class TestLoadtest:
    def test_counts_match_the_server(self):
        report, stats = run_cohort(STREAM, clients=3)
        assert report["complete_clients"] == 3
        assert report["frames_total"] == 3 * STREAM.n_frames
        assert report["events_total"] == 3 * stats.events_produced
        # Every client saw the full byte stream, headers included.
        assert report["bytes_total"] == 3 * stats.bytes_produced
        assert report["events_per_second"] > 0
        assert report["manifest"] == STREAM.manifest()

    def test_per_client_results_agree(self):
        report, _ = run_cohort(STREAM, clients=2)
        a, b = report["per_client"]
        for key in ("sessions", "queries", "events", "frames", "bytes"):
            assert a[key] == b[key]
        assert a["complete"] and b["complete"]
        # manifest/summary are reported once at top level, not per client.
        assert "summary" not in a
        assert "manifest" not in a

    def test_latency_percentiles_with_stamps(self):
        report, _ = run_cohort(STREAM, clients=2, stamps=True)
        latency = report["latency"]
        assert latency["samples"] == 2 * STREAM.n_frames
        assert 0 <= latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert latency["p99_ms"] <= latency["max_ms"]

    def test_no_stamps_no_latency_block(self):
        report, _ = run_cohort(STREAM, clients=1)
        assert report["latency"] == {}

    def test_jsonl_codec_counts_the_same_events(self):
        binary, _ = run_cohort(STREAM, clients=1)
        debug, _ = run_cohort(STREAM, clients=1, codec="jsonl")
        assert debug["events_total"] == binary["events_total"]
        assert debug["frames_total"] == binary["frames_total"]
        # The debug codec is strictly bulkier than the columnar one.
        assert debug["bytes_total"] > binary["bytes_total"]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LoadtestConfig(clients=0)
