"""Frame codec: headers, columnar payloads, incremental reassembly."""

import numpy as np
import pytest

from repro.service.framing import (
    FRAME_DATA,
    FRAME_END,
    FRAME_HELLO,
    FRAME_STAMP,
    HEADER_SIZE,
    FrameDecoder,
    decode_columns,
    decode_json,
    decode_stamp,
    encode_columns,
    encode_frame,
    encode_json_frame,
    encode_stamp_frame,
    frame_header,
    parse_header,
)


def _columns():
    return {
        "f": np.array([1.5, -2.0, 0.0]),
        "i": np.arange(4, dtype=np.int64),
        "b": np.array([True, False]),
        "s": np.array(["madonna", "dvd"], dtype="U7"),
        "m": np.arange(6, dtype=np.float64).reshape(2, 3),
        "empty": np.empty(0, dtype=np.int8),
    }


class TestHeader:
    def test_round_trip(self):
        header = frame_header(FRAME_DATA, 12345)
        assert len(header) == HEADER_SIZE
        assert parse_header(header) == (FRAME_DATA, 12345)

    def test_bad_magic_rejected(self):
        header = bytearray(frame_header(FRAME_DATA, 1))
        header[0] = ord("X")
        with pytest.raises(ValueError, match="magic"):
            parse_header(bytes(header))

    def test_bad_version_rejected(self):
        header = bytearray(frame_header(FRAME_DATA, 1))
        header[4] = 99
        with pytest.raises(ValueError, match="version"):
            parse_header(bytes(header))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            frame_header(42, 1)
        header = bytearray(frame_header(FRAME_DATA, 1))
        header[5] = 42
        with pytest.raises(ValueError, match="kind"):
            parse_header(bytes(header))

    def test_short_header_rejected(self):
        with pytest.raises(ValueError, match="16 bytes"):
            parse_header(b"RPSF")


class TestColumnarPayload:
    def test_round_trip_all_dtypes(self):
        columns = _columns()
        decoded = decode_columns(encode_columns(columns))
        assert list(decoded) == list(columns)
        for name, array in columns.items():
            np.testing.assert_array_equal(decoded[name], array)
            assert decoded[name].dtype == array.dtype

    def test_decode_is_zero_copy_view(self):
        payload = encode_columns({"x": np.arange(8, dtype=np.int64)})
        decoded = decode_columns(payload)
        assert decoded["x"].base is not None  # a view, not an owning copy
        assert not decoded["x"].flags.writeable

    def test_encoding_is_deterministic(self):
        assert encode_columns(_columns()) == encode_columns(_columns())

    def test_object_dtype_rejected(self):
        with pytest.raises(ValueError, match="object dtype"):
            encode_columns({"o": np.array([{}], dtype=object)})

    def test_truncated_payload_rejected(self):
        payload = encode_columns({"x": np.arange(8)})
        with pytest.raises(ValueError):
            decode_columns(payload[:-3])

    def test_trailing_garbage_rejected(self):
        payload = encode_columns({"x": np.arange(8)})
        with pytest.raises(ValueError, match="trailing"):
            decode_columns(payload + b"\x00")


class TestControlFrames:
    def test_json_frame_round_trip(self):
        frame = encode_json_frame(FRAME_HELLO, {"b": 2, "a": 1})
        kind, length = parse_header(frame[:HEADER_SIZE])
        assert kind == FRAME_HELLO
        assert decode_json(frame[HEADER_SIZE:]) == {"a": 1, "b": 2}

    def test_json_payload_is_canonical(self):
        # sorted keys, no whitespace: byte-stable across dict orders.
        a = encode_json_frame(FRAME_END, {"x": 1, "y": 2})
        b = encode_json_frame(FRAME_END, {"y": 2, "x": 1})
        assert a == b

    def test_stamp_round_trip(self):
        frame = encode_stamp_frame(7, 123456789)
        kind, _ = parse_header(frame[:HEADER_SIZE])
        assert kind == FRAME_STAMP
        assert decode_stamp(frame[HEADER_SIZE:]) == (7, 123456789)


class TestFrameDecoder:
    def frames(self):
        return [
            encode_json_frame(FRAME_HELLO, {"n": 1}),
            encode_frame(FRAME_DATA, encode_columns({"x": np.arange(100)})),
            encode_stamp_frame(0, 1),
            encode_json_frame(FRAME_END, {}),
        ]

    def test_single_feed(self):
        wire = b"".join(self.frames())
        decoder = FrameDecoder()
        out = list(decoder.feed(wire))
        assert [k for k, _ in out] == [FRAME_HELLO, FRAME_DATA, FRAME_STAMP, FRAME_END]
        assert decoder.buffered_bytes == 0

    @pytest.mark.parametrize("chunk_size", [1, 3, 16, 17, 1000])
    def test_arbitrary_chunking(self, chunk_size):
        wire = b"".join(self.frames())
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(wire), chunk_size):
            out.extend(decoder.feed(wire[i:i + chunk_size]))
        expected = [
            (parse_header(f[:HEADER_SIZE])[0], f[HEADER_SIZE:]) for f in self.frames()
        ]
        assert out == expected

    def test_foreign_bytes_raise(self):
        decoder = FrameDecoder()
        with pytest.raises(ValueError, match="magic"):
            list(decoder.feed(b"HTTP/1.1 200 OK\r\n\r\n"))
