"""End-to-end broadcast, backpressure, and disconnect isolation.

No pytest-asyncio in the image: every test is a sync function driving
one ``asyncio.run`` whose coroutine owns the server *and* its clients,
so nothing leaks across event loops.
"""

import asyncio

import pytest

from repro.service.client import collect_stream
from repro.service.framing import (
    FRAME_DATA,
    FRAME_END,
    FRAME_HELLO,
    FRAME_STAMP,
    decode_json,
)
from repro.service.server import ServerConfig, ServerStats, WorkloadStreamServer
from repro.service.stream import StreamConfig

SMALL = StreamConfig(
    n_peers=50, seed=7, window_seconds=600.0, batch_sessions=32, n_frames=6
)
# Far more stream than the buffer budget, so a paused producer is
# observable before the broadcast can possibly fit in socket buffers.
LONG = StreamConfig(
    n_peers=400, seed=7, window_seconds=1800.0, batch_sessions=64, n_frames=400
)


async def _start(stream, **config_kwargs):
    server = WorkloadStreamServer(stream, ServerConfig(**config_kwargs))
    await server.start()
    return server, asyncio.create_task(server.serve())


async def _stalled_socket(port):
    """Connect a subscriber that will never read, with tiny OS buffers.

    SO_RCVBUF must be clamped *before* connect (it fixes the TCP window
    scale at handshake); otherwise the kernel's autotuned receive buffer
    silently swallows megabytes of stream on the stalled peer's behalf.
    """
    import socket

    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
    sock.setblocking(False)
    loop = asyncio.get_running_loop()
    await loop.sock_connect(sock, ("127.0.0.1", port))
    return sock


async def _finish(serving, timeout=30.0) -> ServerStats:
    return await asyncio.wait_for(serving, timeout)


async def _wait_for_stall(server, timeout=10.0):
    """Return frames_produced once it stops moving between samples."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    previous = -1
    while loop.time() < deadline:
        current = server.stats.frames_produced
        if current == previous and current > 0:
            return current
        previous = current
        await asyncio.sleep(0.2)
    raise AssertionError("producer never settled into a stall")


class TestBroadcast:
    def test_single_client_receives_full_stream(self):
        async def scenario():
            server, serving = await _start(SMALL)
            receipt = await collect_stream("127.0.0.1", server.port)
            stats = await _finish(serving)
            return receipt, stats

        receipt, stats = asyncio.run(scenario())
        assert receipt.kinds() == (
            [FRAME_HELLO] + [FRAME_DATA] * SMALL.n_frames + [FRAME_END]
        )
        hello = decode_json(receipt.frames[0][1])
        assert hello == SMALL.manifest()
        assert stats.frames_produced == SMALL.n_frames + 2
        assert stats.clients_completed == 1
        assert stats.clients_dropped == 0
        assert stats.bytes_produced == len(receipt.raw)

    def test_fanout_clients_get_identical_bytes(self):
        async def scenario():
            server, serving = await _start(SMALL, start_clients=3)
            receipts = await asyncio.gather(
                *(collect_stream("127.0.0.1", server.port) for _ in range(3))
            )
            stats = await _finish(serving)
            return receipts, stats

        receipts, stats = asyncio.run(scenario())
        assert len({r.raw for r in receipts}) == 1
        assert stats.clients_completed == 3

    def test_broadcast_bytes_identical_across_runs_and_jobs(self):
        async def one_run(stream):
            server, serving = await _start(stream)
            receipt = await collect_stream("127.0.0.1", server.port)
            await _finish(serving)
            return receipt.raw

        first = asyncio.run(one_run(SMALL))
        second = asyncio.run(one_run(SMALL))
        pooled = asyncio.run(
            one_run(
                StreamConfig(
                    n_peers=SMALL.n_peers, seed=SMALL.seed,
                    window_seconds=SMALL.window_seconds,
                    batch_sessions=SMALL.batch_sessions,
                    n_frames=SMALL.n_frames, jobs=2,
                )
            )
        )
        assert first == second == pooled

    def test_stamps_interleave_without_touching_the_contract(self):
        async def scenario():
            server, serving = await _start(SMALL, stamps=True)
            receipt = await collect_stream("127.0.0.1", server.port)
            await _finish(serving)
            return receipt

        receipt = asyncio.run(scenario())
        assert receipt.kinds().count(FRAME_STAMP) == SMALL.n_frames
        plain = asyncio.run(self._plain_bytes())
        assert receipt.deterministic_bytes(exclude_kinds=(FRAME_STAMP,)) == plain

    async def _plain_bytes(self):
        server, serving = await _start(SMALL)
        receipt = await collect_stream("127.0.0.1", server.port)
        await _finish(serving)
        return receipt.raw

    def test_rate_limit_records_waits(self):
        async def scenario():
            server, serving = await _start(
                SMALL, rate_events_per_s=50000.0, burst_events=16.0
            )
            await collect_stream("127.0.0.1", server.port)
            return await _finish(serving)

        stats = asyncio.run(scenario())
        assert stats.events_produced > 0
        assert stats.rate_wait_seconds > 0.0

    def test_late_joiner_gets_clean_close(self):
        async def scenario():
            server, serving = await _start(SMALL)
            receipt = await collect_stream("127.0.0.1", server.port)
            await _finish(serving)
            return receipt

        receipt = asyncio.run(scenario())
        assert receipt.frames[-1][0] == FRAME_END


class TestBackpressure:
    def test_stalled_client_pauses_generation_within_budget(self):
        buffer_frames = 4

        async def scenario():
            server, serving = await _start(
                LONG, buffer_frames=buffer_frames, sndbuf=4096
            )
            # A subscriber that never reads: TCP fills, its writer blocks
            # in drain(), its queue fills, the producer pauses.
            stalled = await _stalled_socket(server.port)
            produced_a = await _wait_for_stall(server)
            await asyncio.sleep(0.5)
            produced_b = server.stats.frames_produced
            queue_size = server._subscribers[0].queue.qsize()
            peak = server.stats.buffered_frames_peak
            stalled.close()
            stats = await _finish(serving)
            return produced_a, produced_b, queue_size, peak, stats

        produced_a, produced_b, queue_size, peak, stats = asyncio.run(scenario())
        # Paused: no progress while the peer stayed stalled, and nowhere
        # near the full stream.
        assert produced_b == produced_a
        assert produced_b < LONG.n_frames // 2
        # Bounded: the only server-side buffering is the per-subscriber
        # queue, and it never exceeded its configured budget.
        assert queue_size <= buffer_frames
        assert peak <= buffer_frames
        assert stats.backpressure_waits > 0

    def test_disconnect_releases_the_producer(self):
        async def scenario():
            server, serving = await _start(LONG, buffer_frames=4, sndbuf=4096)
            stalled = await _stalled_socket(server.port)
            await _wait_for_stall(server)
            stalled.close()  # the only subscriber walks away
            stats = await _finish(serving)
            return stats

        stats = asyncio.run(scenario())
        # The producer stopped early instead of generating for nobody.
        assert stats.frames_produced < LONG.n_frames + 2
        assert stats.clients_dropped == 1
        assert stats.clients_completed == 0

    def test_stalled_client_does_not_kill_healthy_stream(self):
        async def scenario():
            server, serving = await _start(
                LONG, buffer_frames=4, sndbuf=4096, start_clients=2
            )
            stalled = await _stalled_socket(server.port)
            healthy = asyncio.create_task(
                collect_stream("127.0.0.1", server.port)
            )
            await _wait_for_stall(server)
            assert not healthy.done()  # held back by the slow peer...
            stalled.close()  # ...until it leaves
            receipt = await asyncio.wait_for(healthy, 60.0)
            stats = await _finish(serving, timeout=60.0)
            return receipt, stats

        receipt, stats = asyncio.run(scenario())
        assert receipt.frames[-1][0] == FRAME_END
        assert receipt.kinds().count(FRAME_DATA) == LONG.n_frames
        assert stats.clients_completed == 1
        assert stats.clients_dropped == 1


class TestConfigValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            ServerConfig(buffer_frames=0)
        with pytest.raises(ValueError):
            ServerConfig(start_clients=0)
        with pytest.raises(ValueError):
            ServerConfig(rate_events_per_s=-1.0)
