"""The deterministic frame source: identity, slicing, and round trips."""

import numpy as np
import pytest

from repro.core.generator_columnar import generate_columnar_workload
from repro.core.model import WorkloadModel
from repro.core.popularity import QueryUniverse
from repro.service.framing import (
    FRAME_DATA,
    FRAME_END,
    FRAME_HELLO,
    FRAME_JSONL,
    HEADER_SIZE,
    decode_json,
    parse_header,
)
from repro.service.stream import (
    StreamConfig,
    WorkloadFrameSource,
    batch_events,
    decode_batch,
    window_seed,
)

CFG = StreamConfig(
    n_peers=60, seed=11, window_seconds=900.0, batch_sessions=64, n_frames=5
)


def frames_of(config):
    return list(WorkloadFrameSource(config).frames())


class TestStreamConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(n_peers=0)
        with pytest.raises(ValueError):
            StreamConfig(window_seconds=0)
        with pytest.raises(ValueError):
            StreamConfig(batch_sessions=0)
        with pytest.raises(ValueError):
            StreamConfig(n_frames=0)
        with pytest.raises(ValueError):
            StreamConfig(codec="xml")
        with pytest.raises(ValueError):
            StreamConfig(jobs=0)

    def test_manifest_excludes_jobs(self):
        # jobs must never change the bytes, so it cannot be in the HELLO.
        manifest = StreamConfig(jobs=4).manifest()
        assert "jobs" not in manifest
        assert manifest == StreamConfig(jobs=1).manifest()


class TestWindowSeed:
    def test_deterministic_and_distinct(self):
        assert window_seed(11, 0) == window_seed(11, 0)
        seeds = {window_seed(11, w) for w in range(32)}
        assert len(seeds) == 32
        assert window_seed(11, 0) != window_seed(12, 0)


class TestFrameSequence:
    def test_shape_hello_data_end(self):
        frames = frames_of(CFG)
        kinds = [parse_header(f[:HEADER_SIZE])[0] for f, _ in frames]
        assert kinds[0] == FRAME_HELLO
        assert kinds[-1] == FRAME_END
        assert kinds[1:-1] == [FRAME_DATA] * CFG.n_frames

    def test_control_frames_carry_zero_events(self):
        frames = frames_of(CFG)
        assert frames[0][1] == 0 and frames[-1][1] == 0
        assert all(events > 0 for _, events in frames[1:-1])

    def test_end_summary_totals_match_data_frames(self):
        frames = frames_of(CFG)
        sessions = queries = 0
        for frame, _ in frames[1:-1]:
            batch = decode_batch(frame[HEADER_SIZE:])
            sessions += batch.n_sessions
            queries += batch.n_queries
        summary = decode_json(frames[-1][0][HEADER_SIZE:])
        assert summary == {
            "frames": CFG.n_frames, "sessions": sessions, "queries": queries,
            "events": sessions + queries,
        }

    def test_replay_is_byte_identical(self):
        source = WorkloadFrameSource(CFG)
        first = [f for f, _ in source.frames()]
        second = [f for f, _ in source.frames()]
        assert first == second

    def test_jobs_do_not_change_bytes(self):
        pooled = StreamConfig(
            n_peers=CFG.n_peers, seed=CFG.seed, window_seconds=CFG.window_seconds,
            batch_sessions=CFG.batch_sessions, n_frames=CFG.n_frames, jobs=2,
        )
        assert [f for f, _ in frames_of(CFG)] == [f for f, _ in frames_of(pooled)]

    def test_batches_reassemble_the_generated_window(self):
        # Concatenating the first window's batches must equal the
        # generator's own output for that window, column for column.
        config = StreamConfig(
            n_peers=40, seed=3, window_seconds=600.0, batch_sessions=16,
            n_frames=50,
        )
        universe = QueryUniverse()
        window = generate_columnar_workload(
            WorkloadModel.paper(), universe, n_peers=40,
            seed=window_seed(3, 0), duration_seconds=600.0, start_time=0.0,
        )
        frames = frames_of(config)
        sessions = 0
        collected = {name: [] for name in window.ARRAY_FIELDS}
        for frame, _ in frames[1:-1]:
            batch = decode_batch(frame[HEADER_SIZE:])
            for name in window.ARRAY_FIELDS:
                column = getattr(batch, name)
                if name == "query_session":
                    column = column + sessions  # un-rebase
                collected[name].append(column)
            sessions += batch.n_sessions
            if sessions >= window.n_sessions:
                break
        for name in window.ARRAY_FIELDS:
            got = np.concatenate(collected[name])[: getattr(window, name).size]
            np.testing.assert_array_equal(got, getattr(window, name))

    def test_batch_events_counts_connect_plus_queries(self):
        frames = frames_of(CFG)
        for frame, events in frames[1:-1]:
            batch = decode_batch(frame[HEADER_SIZE:])
            assert events == batch_events(batch) == batch.n_sessions + batch.n_queries

    def test_decoded_batches_validate(self):
        for frame, _ in frames_of(CFG)[1:-1]:
            batch = decode_batch(frame[HEADER_SIZE:])
            batch.validate()
            assert batch.n_sessions <= CFG.batch_sessions


class TestJsonlCodec:
    def test_jsonl_frames_parse_to_the_same_sessions(self):
        import json

        from repro.core.workload_io import session_record

        binary = StreamConfig(
            n_peers=30, seed=5, window_seconds=600.0, batch_sessions=32, n_frames=3
        )
        debug = StreamConfig(
            n_peers=30, seed=5, window_seconds=600.0, batch_sessions=32, n_frames=3,
            codec="jsonl",
        )
        binary_frames = frames_of(binary)
        debug_frames = frames_of(debug)
        assert [e for _, e in binary_frames] == [e for _, e in debug_frames]
        for (bin_frame, _), (dbg_frame, _) in zip(
            binary_frames[1:-1], debug_frames[1:-1]
        ):
            assert parse_header(dbg_frame[:HEADER_SIZE])[0] == FRAME_JSONL
            batch = decode_batch(bin_frame[HEADER_SIZE:])
            records = [
                json.loads(line)
                for line in dbg_frame[HEADER_SIZE:].decode().splitlines()
            ]
            assert records == [session_record(s) for s in batch.iter_sessions()]
