"""Tests for scenario presets and the hit model's synthesis wiring."""

import pytest

from repro.synthesis import SCENARIOS, SynthesisConfig, scenario_config


class TestScenarios:
    def test_known_names(self):
        assert set(SCENARIOS) == {"smoke", "laptop", "bench", "paper"}

    def test_scales_ordered(self):
        assert SCENARIOS["smoke"].days < SCENARIOS["laptop"].days
        assert SCENARIOS["laptop"].days < SCENARIOS["bench"].days
        assert SCENARIOS["bench"].days < SCENARIOS["paper"].days

    def test_paper_scale_matches_trace(self):
        paper = SCENARIOS["paper"]
        # 40 days at ~1.26/s reproduces the paper's ~4.36M connections.
        expected = paper.days * 86400 * paper.mean_arrival_rate
        assert expected == pytest.approx(4_361_965, rel=0.01)

    def test_lookup_and_seed_override(self):
        config = scenario_config("laptop", seed=7)
        assert isinstance(config, SynthesisConfig)
        assert config.seed == 7
        assert config.days == SCENARIOS["laptop"].days

    def test_default_seed_preserved(self):
        assert scenario_config("smoke").seed == SCENARIOS["smoke"].seed

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            scenario_config("galactic")
