"""The vectorized columnar synthesis backend.

Contract under test: ``run_columnar()`` emits a
:class:`~repro.measurement.columnar.ColumnarTrace` directly (no
per-event Python loop, no record objects), byte-reproducible for a
fixed (config, seed, shard layout), invariant to the worker count,
distribution-equivalent to the event reference engine, and feeding the
``.npz`` trace cache with zero serialization.
"""

import io
from dataclasses import replace

import numpy as np
import pytest

from repro.measurement import ColumnarTrace, Trace
from repro.filtering import apply_filters, apply_filters_columnar
from repro.synthesis import (
    SynthesisConfig,
    TraceCache,
    TraceSynthesizer,
    load_or_synthesize_columnar,
)
from repro.synthesis.bench import columnar_ks_checks

CFG = SynthesisConfig(days=0.05, mean_arrival_rate=0.3, seed=1234)
#: Multi-shard layout: 0.1 days cut into 0.04-day shards (3 shards).
SHARDED = SynthesisConfig(
    days=0.1, mean_arrival_rate=0.3, seed=1234, shard_days=0.04, jobs=3
)


def _npz_bytes(trace: ColumnarTrace, tmp_path, name: str) -> bytes:
    path = tmp_path / name
    trace.save_npz(path)
    return path.read_bytes()


class TestReproducibility:
    def test_sequential_byte_reproducible(self, tmp_path):
        a = TraceSynthesizer(CFG).run_columnar()
        b = TraceSynthesizer(CFG).run_columnar()
        assert _npz_bytes(a, tmp_path, "a.npz") == _npz_bytes(b, tmp_path, "b.npz")

    def test_sharded_byte_reproducible(self, tmp_path):
        a = TraceSynthesizer(SHARDED).run_columnar()
        b = TraceSynthesizer(SHARDED).run_columnar()
        assert _npz_bytes(a, tmp_path, "a.npz") == _npz_bytes(b, tmp_path, "b.npz")

    def test_worker_count_invariant(self, tmp_path):
        # Same shard layout, different worker counts: identical bytes.
        # Content is a function of the shard geometry, never of how many
        # processes happened to compute it.
        serial = TraceSynthesizer(replace(SHARDED, jobs=1)).run_columnar()
        fanned = TraceSynthesizer(SHARDED).run_columnar()
        assert _npz_bytes(serial, tmp_path, "serial.npz") == _npz_bytes(
            fanned, tmp_path, "fanned.npz"
        )


class TestMerge:
    @pytest.fixture(scope="class")
    def merged(self):
        return TraceSynthesizer(SHARDED).run_columnar()

    def test_sessions_sorted_by_start(self, merged):
        assert np.all(np.diff(merged.session_start) >= 0)

    def test_ips_globally_unique(self, merged):
        assert np.unique(merged.session_peer_ip).size == merged.n_sessions

    def test_query_blocks_follow_session_order(self, merged):
        # CSR offsets must be consistent: monotone, ending at n_queries,
        # and each session's query rows sorted in time.
        offsets = merged.query_offsets
        assert offsets[0] == 0 and offsets[-1] == merged.n_queries
        assert np.all(np.diff(offsets) >= 0)
        idx = merged.query_session_index()
        order = np.lexsort((merged.query_timestamp, idx))
        assert np.array_equal(order, np.arange(order.size))

    def test_counters_finalized(self, merged):
        for key in ("ping_messages", "pong_messages", "query_messages",
                    "queryhit_messages", "direct_connections"):
            assert key in merged.counters, key
        assert merged.counters["direct_connections"] == merged.n_sessions
        assert "_raw_keepalive_pings" not in merged.counters

    def test_session_ends_bounded(self, merged):
        # Silent departures keep their final keepalive exchange, which
        # may land at most one 30s probe past the window edge.
        global_end = SHARDED.days * 86400.0
        assert float(merged.session_end.max()) <= global_end + 30.0


class TestEquivalence:
    #: One scale for both engines: big enough for stable distributions,
    #: small enough for the event reference to run in ~1s.
    SCALE = SynthesisConfig(days=0.2, mean_arrival_rate=0.3, seed=20040315)

    @pytest.fixture(scope="class")
    def event(self):
        cfg = replace(self.SCALE, backend="event")
        return ColumnarTrace.from_trace(TraceSynthesizer(cfg).run())

    def test_sequential_ks_equivalence(self, event):
        columnar = TraceSynthesizer(self.SCALE).run_columnar()
        checks = columnar_ks_checks(event, columnar)
        assert checks["ok"] is True, checks

    def test_sharded_ks_equivalence(self, event):
        # The sharded fast path (jobs > 1, disjoint RNG streams and IP
        # ranges per shard) must hold the same distributional contract.
        cfg = replace(self.SCALE, shard_days=0.08, jobs=2)
        columnar = TraceSynthesizer(cfg).run_columnar()
        assert np.unique(columnar.session_peer_ip).size == columnar.n_sessions
        checks = columnar_ks_checks(event, columnar)
        assert checks["ok"] is True, checks


class TestBackendDispatch:
    def test_columnar_is_default(self):
        assert CFG.backend == "columnar"
        assert TraceSynthesizer(CFG).effective_backend == "columnar"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SynthesisConfig(days=0.05, backend="gpu")

    def test_event_backend_selected_explicitly(self):
        cfg = replace(CFG, backend="event")
        assert TraceSynthesizer(cfg).effective_backend == "event"

    def test_max_slots_falls_back_to_event(self):
        cfg = replace(CFG, max_slots=50)
        synth = TraceSynthesizer(cfg)
        assert synth.effective_backend == "event"
        # run_columnar still honours its return type via conversion.
        assert isinstance(synth.run_columnar(), ColumnarTrace)

    def test_run_returns_trace(self):
        trace = TraceSynthesizer(CFG).run()
        assert isinstance(trace, Trace)
        assert trace.n_connections > 50


class TestCacheRoundTrip:
    def test_npz_roundtrip_matches_jsonl_filter_report(self, tmp_path):
        """End to end: fast path -> .npz cache -> reload -> filter must
        equal the same trace filtered through the record/JSONL path."""
        cache = TraceCache(tmp_path / "cache")
        columnar = TraceSynthesizer(CFG).run_columnar()
        cache.store_columnar(CFG, columnar)

        reloaded = cache.load_columnar(CFG)
        npz_report = apply_filters_columnar(reloaded).report.as_dict()

        jsonl_path = tmp_path / "trace.jsonl"
        columnar.to_trace().to_jsonl(jsonl_path)
        records = Trace.from_jsonl(jsonl_path)
        jsonl_report = apply_filters(records.sessions).report.as_dict()

        assert npz_report == jsonl_report
        assert npz_report["initial_queries"] > 0

    def test_load_or_synthesize_columnar_warm_hit(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        cold = load_or_synthesize_columnar(CFG, cache=cache)
        assert cache.contains(CFG)
        warm = load_or_synthesize_columnar(CFG, cache=cache)
        buf_a, buf_b = io.BytesIO(), io.BytesIO()
        np.savez(buf_a, ts=cold.query_timestamp, ip=cold.session_peer_ip)
        np.savez(buf_b, ts=warm.query_timestamp, ip=warm.session_peer_ip)
        assert buf_a.getvalue() == buf_b.getvalue()
