"""Sharded synthesis: window math, determinism, and statistical equivalence."""

import io
import heapq

import numpy as np
import pytest

from repro.core.validation import ccdf_max_gap
from repro.filtering import apply_filters
from repro.synthesis import SynthesisConfig, TraceSynthesizer, shard_windows, synthesize_trace
from repro.synthesis.synthesizer import SHARD_IP_STRIDE, _ShardEngine


def _jsonl_bytes(trace, tmp_path, name):
    path = tmp_path / name
    trace.to_jsonl(path)
    return path.read_bytes()


class TestShardWindows:
    def test_sequential_config_is_one_window(self):
        cfg = SynthesisConfig(days=2.0)
        assert shard_windows(cfg) == [(0.0, 2.0 * 86400.0)]

    def test_jobs_split_is_equal_width_and_covering(self):
        cfg = SynthesisConfig(days=2.0, jobs=4)
        windows = shard_windows(cfg)
        assert len(windows) == 4
        assert windows[0][0] == 0.0
        assert windows[-1][1] == pytest.approx(2.0 * 86400.0)
        widths = [end - start for start, end in windows]
        assert all(w == pytest.approx(43200.0) for w in widths)
        # contiguous: each window starts where the previous ended
        for (_, prev_end), (start, _) in zip(windows, windows[1:]):
            assert start == prev_end

    def test_shard_days_overrides_jobs(self):
        cfg = SynthesisConfig(days=1.0, jobs=2, shard_days=0.25)
        assert len(shard_windows(cfg)) == 4

    def test_shard_days_partial_last_shard(self):
        cfg = SynthesisConfig(days=1.0, shard_days=0.4)
        windows = shard_windows(cfg)
        assert len(windows) == 3
        assert windows[-1][1] == pytest.approx(86400.0)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SynthesisConfig(jobs=0)
        with pytest.raises(ValueError):
            SynthesisConfig(shard_days=-1.0)


class TestShardedDeterminism:
    DAYS = 0.1

    def test_same_config_same_bytes(self, tmp_path):
        a = synthesize_trace(days=self.DAYS, jobs=3)
        b = synthesize_trace(days=self.DAYS, jobs=3)
        assert _jsonl_bytes(a, tmp_path, "a.jsonl") == _jsonl_bytes(b, tmp_path, "b.jsonl")

    def test_worker_count_does_not_change_content(self, tmp_path):
        """jobs only sets parallelism; the shard count decides content."""
        a = synthesize_trace(days=self.DAYS, jobs=1, shard_days=self.DAYS / 3)
        b = synthesize_trace(days=self.DAYS, jobs=3, shard_days=self.DAYS / 3)
        assert _jsonl_bytes(a, tmp_path, "a.jsonl") == _jsonl_bytes(b, tmp_path, "b.jsonl")

    def test_different_shard_count_changes_realization(self):
        a = synthesize_trace(days=self.DAYS, jobs=1)
        b = synthesize_trace(days=self.DAYS, jobs=3)
        assert [s.start for s in a.sessions] != [s.start for s in b.sessions]

    def test_ips_unique_across_shards(self):
        trace = synthesize_trace(days=self.DAYS, jobs=3)
        ips = [s.peer_ip for s in trace.sessions] + [p.ip for p in trace.pongs]
        assert len(ips) == len(set(ips))

    def test_sessions_merged_in_time_order(self):
        trace = synthesize_trace(days=self.DAYS, jobs=3)
        starts = [s.start for s in trace.sessions]
        assert starts == sorted(starts)
        stamps = [p.timestamp for p in trace.pongs]
        assert stamps == sorted(stamps)

    def test_sessions_can_straddle_shard_boundaries(self):
        """A session arriving near a shard's end survives past the boundary."""
        cfg = SynthesisConfig(days=self.DAYS, jobs=4)
        boundaries = [end for _, end in shard_windows(cfg)[:-1]]
        trace = TraceSynthesizer(cfg).run()
        straddlers = [
            s for s in trace.sessions
            if any(s.start < b < s.end for b in boundaries)
        ]
        assert straddlers, "expected at least one boundary-straddling session"

    def test_sharded_sessions_truncate_at_global_end(self):
        """No session outlives the trace beyond the monitor's 30 s idle
        detection overshoot (same bound as the sequential path)."""
        from repro.measurement import IDLE_CLOSE_SECONDS, IDLE_PROBE_SECONDS

        trace = synthesize_trace(days=self.DAYS, jobs=3)
        bound = trace.end_time + IDLE_PROBE_SECONDS + IDLE_CLOSE_SECONDS
        assert all(s.end <= bound for s in trace.sessions)


class TestShardFallbacks:
    def test_max_slots_forces_single_shard(self):
        cfg = SynthesisConfig(days=0.02, jobs=2, max_slots=50)
        with pytest.warns(RuntimeWarning, match="slot caps"):
            synth = TraceSynthesizer(cfg)
        assert synth.n_shards == 1

    def test_custom_population_forces_single_shard(self):
        from repro.agents import PeerPopulation

        cfg = SynthesisConfig(days=0.02, jobs=2)
        with pytest.warns(RuntimeWarning, match="population"):
            synth = TraceSynthesizer(cfg, population=PeerPopulation(seed=7))
        assert synth.n_shards == 1

    def test_single_shard_ip_range_unrestricted(self):
        cfg = SynthesisConfig(days=0.02)
        synth = TraceSynthesizer(cfg)
        assert synth.n_shards == 1
        assert synth.population._allocator._counter_limit is None


class TestStatisticalEquivalence:
    """1-shard and N-shard runs are different realizations of the same
    process: headline distributions must agree within KS tolerance."""

    DAYS = 0.3
    GAP = 0.05

    @pytest.fixture(scope="class")
    def seq_and_sharded(self):
        seq = synthesize_trace(days=self.DAYS, jobs=1)
        sharded = synthesize_trace(days=self.DAYS, jobs=4)
        return seq, sharded

    def test_connection_volume_close(self, seq_and_sharded):
        seq, sharded = seq_and_sharded
        assert sharded.n_connections == pytest.approx(seq.n_connections, rel=0.05)

    def test_session_durations_ks_equivalent(self, seq_and_sharded):
        seq, sharded = seq_and_sharded
        dur_a = [s.duration for s in seq.sessions]
        dur_b = [s.duration for s in sharded.sessions]
        assert ccdf_max_gap(dur_a, dur_b) < self.GAP

    def test_query_interarrivals_ks_equivalent(self, seq_and_sharded):
        seq, sharded = seq_and_sharded
        gap_a = apply_filters(seq.sessions).interarrival_times()
        gap_b = apply_filters(sharded.sessions).interarrival_times()
        # Fewer samples than durations, so use the two-sample KS critical
        # value at the 1% level instead of a fixed gap.
        n, m = len(gap_a), len(gap_b)
        critical = 1.63 * np.sqrt((n + m) / (n * m))
        assert ccdf_max_gap(gap_a, gap_b) < critical

    def test_counters_close(self, seq_and_sharded):
        seq, sharded = seq_and_sharded
        for name in ("hop1_query_messages", "ping_messages", "pong_messages"):
            assert sharded.counters[name] == pytest.approx(
                seq.counters[name], rel=0.10
            ), name


class TestEventDrain:
    """Regression for the heap-drain boundary bug: an out-of-window event
    must be skipped, not treated as a stop signal."""

    @staticmethod
    def _drain(events, end_time):
        return list(_ShardEngine._drain_events(events, end_time))

    def test_out_of_window_head_does_not_drop_later_events(self):
        end = 100.0
        # Not a valid heap: heappop returns the out-of-window event first.
        # Under the old `break` semantics the in-window event at t=1.0
        # would be silently dropped.
        events = [(end + 1.0, 0, "close", (1,)), (1.0, 1, "query", (2,))]
        drained = self._drain(events, end)
        assert drained == [(1.0, "query", (2,))]

    def test_interleaved_out_of_window_events_skipped(self):
        end = 50.0
        events = []
        for seq, when in enumerate([10.0, 60.0, 20.0, 70.0, 30.0]):
            heapq.heappush(events, (when, seq, "query", (seq,)))
        drained = self._drain(events, end)
        assert [w for w, _, _ in drained] == [10.0, 20.0, 30.0]

    def test_boundary_event_excluded(self):
        events = [(50.0, 0, "close", (1,)), (49.9, 1, "close", (2,))]
        heapq.heapify(events)
        drained = self._drain(events, 50.0)
        assert [w for w, _, _ in drained] == [49.9]

    def test_drains_heap_in_time_order(self):
        events = []
        rng = np.random.default_rng(7)
        for seq, when in enumerate(rng.random(64) * 100.0):
            heapq.heappush(events, (float(when), seq, "q", (seq,)))
        drained = self._drain(events, 100.0)
        assert [w for w, _, _ in drained] == sorted(w for w, _, _ in drained)
        assert len(drained) == 64
