"""Tests for the trace synthesizer."""

import numpy as np
import pytest

from repro.core.regions import Region
from repro.synthesis import BACKGROUND_RATIOS, SynthesisConfig, TraceSynthesizer, synthesize_trace


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SynthesisConfig(days=0.0)
        with pytest.raises(ValueError):
            SynthesisConfig(mean_arrival_rate=-1.0)
        with pytest.raises(ValueError):
            SynthesisConfig(bye_prob=1.5)


class TestTraceShape:
    def test_sessions_within_window(self, small_trace):
        for s in small_trace.sessions:
            assert 0.0 <= s.start < small_trace.end_time
            assert s.end <= small_trace.end_time + 31.0  # idle overshoot at edge

    def test_unique_peer_ips(self, small_trace):
        ips = [s.peer_ip for s in small_trace.sessions]
        assert len(set(ips)) == len(ips)

    def test_quick_disconnect_band(self, small_trace):
        durations = np.array([s.duration for s in small_trace.sessions])
        frac = (durations < 64.0).mean()
        assert frac == pytest.approx(0.70, abs=0.05)

    def test_quick_disconnect_profile(self, small_trace):
        """Section 3.3: 29% of connections end <10 s, another 32% in 10-35 s."""
        durations = np.array([s.duration for s in small_trace.sessions])
        assert (durations < 10.0).mean() == pytest.approx(0.29, abs=0.05)
        assert ((durations >= 10.0) & (durations < 35.0)).mean() == pytest.approx(0.32, abs=0.06)

    def test_counters_present(self, small_trace):
        for key in ("query_messages", "ping_messages", "pong_messages",
                    "queryhit_messages", "direct_connections", "hop1_query_messages"):
            assert key in small_trace.counters

    def test_background_ratios_applied(self, small_trace):
        counters = small_trace.counters
        hop1 = counters["hop1_query_messages"]
        relayed = counters["query_messages"] - hop1
        assert relayed / hop1 == pytest.approx(
            BACKGROUND_RATIOS["relayed_queries_per_hop1"], rel=0.01
        )

    def test_pong_samples_cover_all_hours(self, small_trace):
        hours = {int(p.timestamp // 3600) % 24 for p in small_trace.pongs}
        assert len(hours) == 24

    def test_ultrapeer_mix(self, small_trace):
        frac = np.mean([s.ultrapeer for s in small_trace.sessions])
        assert frac == pytest.approx(0.40, abs=0.05)  # Section 3.1

    def test_queries_sorted_within_sessions(self, small_trace):
        for s in small_trace.sessions:
            times = [q.timestamp for q in s.queries]
            assert times == sorted(times)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = synthesize_trace(days=0.05, mean_arrival_rate=0.2, seed=99)
        b = synthesize_trace(days=0.05, mean_arrival_rate=0.2, seed=99)
        assert a.n_connections == b.n_connections
        assert a.hop1_query_count() == b.hop1_query_count()
        assert [s.peer_ip for s in a.sessions] == [s.peer_ip for s in b.sessions]

    def test_different_seed_differs(self):
        a = synthesize_trace(days=0.05, mean_arrival_rate=0.2, seed=1)
        b = synthesize_trace(days=0.05, mean_arrival_rate=0.2, seed=2)
        assert [s.start for s in a.sessions] != [s.start for s in b.sessions]


class TestSlotCap:
    def test_slot_limit_rejects_arrivals(self):
        trace = synthesize_trace(days=0.05, mean_arrival_rate=1.0, seed=5, max_slots=20)
        assert trace.counters["rejected_connections"] > 0

    def test_unbounded_never_rejects(self, small_trace):
        assert small_trace.counters["rejected_connections"] == 0
