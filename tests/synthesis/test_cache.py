"""Content-addressed trace cache: keying, round-trips, and hygiene."""

import json

import pytest

from repro.synthesis import (
    SynthesisConfig,
    TraceCache,
    TraceSynthesizer,
    default_cache_dir,
    load_or_synthesize,
    trace_cache_key,
)
from repro.synthesis.cache import effective_shard_count


class TestCacheKey:
    def test_key_is_deterministic(self):
        cfg = SynthesisConfig(days=0.1, seed=7)
        assert trace_cache_key(cfg) == trace_cache_key(SynthesisConfig(days=0.1, seed=7))

    def test_key_ignores_worker_count_at_fixed_shards(self):
        a = SynthesisConfig(days=0.1, jobs=2, shard_days=0.05)
        b = SynthesisConfig(days=0.1, jobs=8, shard_days=0.05)
        assert trace_cache_key(a) == trace_cache_key(b)

    def test_key_tracks_shard_count(self):
        # jobs changes the derived shard count when shard_days is unset,
        # and the shard count changes trace content.
        a = SynthesisConfig(days=0.1, jobs=1)
        b = SynthesisConfig(days=0.1, jobs=4)
        assert trace_cache_key(a) != trace_cache_key(b)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("days", 0.2),
            ("mean_arrival_rate", 0.5),
            ("seed", 8),
            ("max_slots", 100),
            ("bye_prob", 0.10),
            ("quick_query_prob", 0.20),
            ("background_samples_per_hour", 60),
        ],
    )
    def test_key_tracks_every_content_field(self, field, value):
        import dataclasses

        base = SynthesisConfig(days=0.1, seed=7)
        changed = dataclasses.replace(base, **{field: value})
        assert trace_cache_key(base) != trace_cache_key(changed)

    def test_slot_capped_config_counts_one_shard(self):
        cfg = SynthesisConfig(days=0.1, jobs=4, max_slots=50)
        assert effective_shard_count(cfg) == 1


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_P2P_CACHE", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_P2P_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-p2p" / "traces"


class TestCacheRoundTrip:
    CFG = SynthesisConfig(days=0.02, seed=31337)

    def test_cold_miss_then_warm_hit(self, tmp_path):
        cache = TraceCache(tmp_path)
        assert cache.load(self.CFG) is None
        trace = load_or_synthesize(self.CFG, cache=cache)
        assert cache.contains(self.CFG)
        warm = load_or_synthesize(self.CFG, cache=cache)
        assert warm.counters == trace.counters
        assert len(warm.sessions) == len(trace.sessions)

    def test_cached_trace_equals_fresh_synthesis(self, tmp_path):
        cache = TraceCache(tmp_path)
        cached = load_or_synthesize(self.CFG, cache=cache)
        cached = load_or_synthesize(self.CFG, cache=cache)  # warm read
        fresh = TraceSynthesizer(self.CFG).run()
        a, b = tmp_path / "cached.jsonl", tmp_path / "fresh.jsonl"
        cached.to_jsonl(a)
        fresh.to_jsonl(b)
        assert a.read_bytes() == b.read_bytes()

    def test_use_cache_false_bypasses(self, tmp_path):
        cache = TraceCache(tmp_path)
        load_or_synthesize(self.CFG, cache=cache, use_cache=False)
        assert not cache.contains(self.CFG)

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = TraceCache(tmp_path)
        load_or_synthesize(self.CFG, cache=cache)
        path = cache.path_for(self.CFG)
        path.write_text("not json at all\n")
        assert cache.load(self.CFG) is None
        assert not path.exists()

    def test_truncated_jsonl_entry_is_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path, format="jsonl")
        load_or_synthesize(self.CFG, cache=cache)
        path = cache.path_for(self.CFG)
        # drop the header line: structurally valid JSON, wrong shape
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")
        assert cache.load(self.CFG) is None

    def test_truncated_npz_entry_is_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        load_or_synthesize(self.CFG, cache=cache)
        path = cache.path_for(self.CFG)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load(self.CFG) is None
        assert not path.exists()

    def test_clear_removes_entries(self, tmp_path):
        cache = TraceCache(tmp_path)
        load_or_synthesize(self.CFG, cache=cache)
        assert cache.clear() == 1
        assert not cache.contains(self.CFG)
        assert cache.clear() == 0

    def test_store_writes_loadable_npz_by_default(self, tmp_path):
        from repro.measurement import ColumnarTrace

        cache = TraceCache(tmp_path)
        trace = TraceSynthesizer(self.CFG).run()
        path = cache.store(self.CFG, trace)
        assert path.suffix == ".npz"
        loaded = ColumnarTrace.load_npz(path)
        assert loaded.counters == trace.counters
        assert loaded.n_sessions == len(trace.sessions)

    def test_store_jsonl_format_writes_archival_schema(self, tmp_path):
        from repro.measurement import Trace

        cache = TraceCache(tmp_path, format="jsonl")
        trace = TraceSynthesizer(self.CFG).run()
        path = cache.store(self.CFG, trace)
        assert path.suffix == ".jsonl"
        assert json.loads(path.read_text().splitlines()[0])["kind"] == "header"
        assert Trace.from_jsonl(path).counters == trace.counters

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            TraceCache(tmp_path, format="parquet")


class TestCacheCrossFormat:
    """Entries written in one format stay warm for caches using the other."""

    CFG = SynthesisConfig(days=0.02, seed=31337)

    def test_jsonl_entry_readable_by_npz_cache(self, tmp_path):
        writer = TraceCache(tmp_path, format="jsonl")
        trace = load_or_synthesize(self.CFG, cache=writer)
        reader = TraceCache(tmp_path, format="npz")
        assert reader.contains(self.CFG)
        assert reader.load(self.CFG).counters == trace.counters

    def test_npz_entry_readable_by_jsonl_cache(self, tmp_path):
        writer = TraceCache(tmp_path, format="npz")
        trace = load_or_synthesize(self.CFG, cache=writer)
        reader = TraceCache(tmp_path, format="jsonl")
        assert reader.contains(self.CFG)
        assert reader.load(self.CFG).counters == trace.counters

    def test_load_columnar_from_npz_and_jsonl(self, tmp_path):
        npz = TraceCache(tmp_path / "npz", format="npz")
        jsonl = TraceCache(tmp_path / "jsonl", format="jsonl")
        trace = load_or_synthesize(self.CFG, cache=npz)
        jsonl.store(self.CFG, trace)
        from_npz = npz.load_columnar(self.CFG)
        from_jsonl = jsonl.load_columnar(self.CFG)
        assert from_npz.n_sessions == from_jsonl.n_sessions == len(trace.sessions)
        assert from_npz.counters == from_jsonl.counters == trace.counters
        assert from_npz.to_trace().sessions == trace.sessions

    def test_load_columnar_misses_cold_cache(self, tmp_path):
        assert TraceCache(tmp_path).load_columnar(self.CFG) is None


class TestExperimentContextCache:
    def test_context_populates_and_reuses_cache(self, tmp_path):
        from repro.experiments import ExperimentContext

        cfg = SynthesisConfig(days=0.02, seed=99)
        cache = TraceCache(tmp_path)
        ctx = ExperimentContext(cfg, cache=cache)
        trace = ctx.trace
        assert cache.contains(cfg)
        ctx2 = ExperimentContext(cfg, cache=cache)
        assert ctx2.trace.counters == trace.counters

    def test_context_cache_false_bypasses(self, tmp_path, monkeypatch):
        from repro.experiments import ExperimentContext

        monkeypatch.setenv("REPRO_P2P_CACHE", str(tmp_path))
        cfg = SynthesisConfig(days=0.02, seed=99)
        ctx = ExperimentContext(cfg, cache=False)
        ctx.trace
        assert not TraceCache().contains(cfg)

    def test_context_jobs_override(self):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(SynthesisConfig(days=0.02), jobs=3, cache=False)
        assert ctx.config.jobs == 3
