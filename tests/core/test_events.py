"""Tests for the shared event/session dataclasses."""

import pytest

from repro.core.events import GeneratedSession, QueryRecord, SessionRecord
from repro.core.regions import Region


def make_session(query_times=(), start=100.0, end=400.0):
    queries = tuple(QueryRecord(timestamp=t, keywords=f"q{t}") for t in query_times)
    return SessionRecord(
        peer_ip="64.1.1.1", region=Region.NORTH_AMERICA,
        start=start, end=end, queries=queries,
    )


class TestQueryRecord:
    def test_defaults(self):
        q = QueryRecord(timestamp=5.0, keywords="free music")
        assert q.hops == 1 and not q.sha1 and not q.automated

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError):
            QueryRecord(timestamp=-1.0, keywords="x")

    def test_rejects_negative_hops(self):
        with pytest.raises(ValueError):
            QueryRecord(timestamp=0.0, keywords="x", hops=-1)


class TestSessionRecord:
    def test_duration(self):
        assert make_session().duration == pytest.approx(300.0)

    def test_passive_classification(self):
        assert make_session().is_passive
        assert not make_session(query_times=(150.0,)).is_passive

    def test_query_count(self):
        assert make_session(query_times=(110.0, 120.0)).query_count == 2

    def test_time_until_first_query(self):
        s = make_session(query_times=(150.0, 300.0))
        assert s.time_until_first_query == pytest.approx(50.0)
        assert make_session().time_until_first_query is None

    def test_time_after_last_query(self):
        s = make_session(query_times=(150.0, 300.0))
        assert s.time_after_last_query == pytest.approx(100.0)

    def test_interarrival_times(self):
        s = make_session(query_times=(110.0, 150.0, 230.0))
        assert s.interarrival_times() == pytest.approx([40.0, 80.0])

    def test_rejects_unordered_queries(self):
        queries = (
            QueryRecord(timestamp=200.0, keywords="a"),
            QueryRecord(timestamp=150.0, keywords="b"),
        )
        with pytest.raises(ValueError):
            SessionRecord(peer_ip="1.2.3.4", region=Region.EUROPE,
                          start=100.0, end=300.0, queries=queries)

    def test_rejects_end_before_start(self):
        with pytest.raises(ValueError):
            make_session(start=500.0, end=400.0)

    def test_with_queries_replaces(self):
        s = make_session(query_times=(150.0, 200.0))
        trimmed = s.with_queries(s.queries[:1])
        assert trimmed.query_count == 1
        assert s.query_count == 2  # original untouched
        assert trimmed.peer_ip == s.peer_ip


class TestGeneratedSession:
    def test_end_property(self):
        s = GeneratedSession(region=Region.ASIA, start=10.0, duration=90.0, passive=True)
        assert s.end == pytest.approx(100.0)
        assert s.query_count == 0
