"""Tests for the query popularity model (classes, Zipf, hot-set drift)."""

import numpy as np
import pytest

from repro.core.popularity import (
    BodyTailZipf,
    QueryClassId,
    QueryUniverse,
    region_class_probabilities,
    top_n_overlap,
    zipf_for_class,
)
from repro.core.regions import Region

RNG = np.random.default_rng(17)


class TestRegionClassProbabilities:
    def test_own_class_dominates(self):
        # Section 4.6: own-region class with probability 0.97.
        for region in (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA):
            probs = region_class_probabilities(region)
            own = max(probs.values())
            assert own == pytest.approx(0.97, abs=1e-9)

    def test_probabilities_sum_to_one(self):
        probs = region_class_probabilities(Region.EUROPE)
        assert sum(probs.values()) == pytest.approx(1.0, abs=1e-9)

    def test_region_sees_only_its_classes(self):
        probs = region_class_probabilities(Region.ASIA)
        assert QueryClassId.NA_EU not in probs
        assert QueryClassId.AS_ONLY in probs
        assert QueryClassId.ALL in probs

    def test_other_aliases_na(self):
        assert region_class_probabilities(Region.OTHER) == region_class_probabilities(
            Region.NORTH_AMERICA
        )


class TestBodyTailZipf:
    def test_pmf_normalizes(self):
        bt = BodyTailZipf(0.453, 4.67, split=45, n=100)
        assert sum(bt.pmf(r) for r in range(1, 101)) == pytest.approx(1.0, abs=1e-12)

    def test_tail_steeper_than_body(self):
        bt = BodyTailZipf(0.453, 4.67, split=45, n=100)
        body_ratio = bt.pmf(1) / bt.pmf(45)
        tail_ratio = bt.pmf(46) / bt.pmf(100)
        # Body spans 45 ranks with a shallow slope; the 54 tail ranks drop
        # far more steeply.
        assert tail_ratio > body_ratio

    def test_continuous_at_split(self):
        bt = BodyTailZipf(0.5, 4.0, split=10, n=50)
        # No discontinuity jump: pmf(11)/pmf(10) stays close to 1.
        assert 0.5 < bt.pmf(11) / bt.pmf(10) < 1.0

    def test_sampling_in_support(self):
        bt = BodyTailZipf(0.453, 4.67, split=45, n=100)
        s = bt.sample(RNG, 5000)
        assert s.min() >= 1 and s.max() <= 100

    def test_rejects_bad_split(self):
        with pytest.raises(ValueError):
            BodyTailZipf(0.5, 4.0, split=100, n=100)


class TestZipfForClass:
    def test_na_uses_published_alpha(self):
        z = zipf_for_class(QueryClassId.NA_ONLY, 100)
        assert z.alpha == pytest.approx(0.386)

    def test_intersection_uses_body_tail(self):
        z = zipf_for_class(QueryClassId.NA_EU, 100)
        assert isinstance(z, BodyTailZipf)

    def test_small_intersection_falls_back(self):
        z = zipf_for_class(QueryClassId.NA_EU, 10)
        assert not isinstance(z, BodyTailZipf)

    def test_rejects_empty_class(self):
        with pytest.raises(ValueError):
            zipf_for_class(QueryClassId.ALL, 0)


class TestQueryUniverse:
    def test_daily_sizes_match_table3(self):
        u = QueryUniverse(period_days=1, seed=1)
        assert u.daily_size(QueryClassId.NA_ONLY) == 1990 - 56 - 5 - 2
        assert u.daily_size(QueryClassId.ALL) == 2

    def test_scale_factor(self):
        u = QueryUniverse(seed=1, scale=0.1)
        assert u.daily_size(QueryClassId.NA_ONLY) == pytest.approx(193, abs=2)

    def test_rankings_are_deterministic(self):
        a = QueryUniverse(seed=5).daily_ranking(3, QueryClassId.EU_ONLY)
        b = QueryUniverse(seed=5).daily_ranking(3, QueryClassId.EU_ONLY)
        assert a == b

    def test_rankings_depend_on_seed(self):
        a = QueryUniverse(seed=5).daily_ranking(0, QueryClassId.NA_ONLY)
        b = QueryUniverse(seed=6).daily_ranking(0, QueryClassId.NA_ONLY)
        assert a != b

    def test_out_of_order_day_access(self):
        u = QueryUniverse(seed=5)
        late = u.daily_ranking(4, QueryClassId.NA_ONLY)
        early = u.daily_ranking(2, QueryClassId.NA_ONLY)
        u2 = QueryUniverse(seed=5)
        assert u2.daily_ranking(2, QueryClassId.NA_ONLY) == early
        assert u2.daily_ranking(4, QueryClassId.NA_ONLY) == late

    def test_hot_set_drift_band(self):
        # Fig. 10(a): for ~80% of days at most 4 of the top 10 appear in
        # the next day's top 100.
        u = QueryUniverse(seed=11)
        overlaps = [
            top_n_overlap(
                u.daily_ranking(d, QueryClassId.NA_ONLY),
                u.daily_ranking(d + 1, QueryClassId.NA_ONLY),
                (1, 10), 100,
            )
            for d in range(40)
        ]
        frac_low = np.mean([o <= 4 for o in overlaps])
        assert 0.55 <= frac_low <= 0.98

    def test_sample_returns_class_member(self):
        u = QueryUniverse(seed=2)
        sampled = u.sample(RNG, day=0, region=Region.EUROPE)
        ranking = u.daily_ranking(0, sampled.query_class)
        assert sampled.keywords in ranking
        assert ranking[sampled.rank - 1] == sampled.keywords

    def test_sample_mostly_own_class(self):
        u = QueryUniverse(seed=2)
        own = sum(
            u.sample(RNG, day=0, region=Region.NORTH_AMERICA).query_class
            is QueryClassId.NA_ONLY
            for _ in range(800)
        )
        assert own / 800 == pytest.approx(0.97, abs=0.03)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            QueryUniverse(period_days=3)

    def test_rejects_bad_persistence(self):
        with pytest.raises(ValueError):
            QueryUniverse(persistence=1.0)

    def test_rejects_negative_day(self):
        with pytest.raises(ValueError):
            QueryUniverse().daily_ranking(-1, QueryClassId.NA_ONLY)


class TestTopNOverlap:
    def test_full_overlap(self):
        ranking = [f"q{i}" for i in range(100)]
        assert top_n_overlap(ranking, ranking, (1, 10), 100) == 10

    def test_disjoint(self):
        a = [f"a{i}" for i in range(50)]
        b = [f"b{i}" for i in range(50)]
        assert top_n_overlap(a, b, (1, 10), 50) == 0

    def test_rank_range_selects_slice(self):
        a = [f"q{i}" for i in range(30)]
        b = list(reversed(a))
        # ranks 11-20 of a are q10..q19; b's top 10 are q29..q20.
        assert top_n_overlap(a, b, (11, 20), 10) == 0
        assert top_n_overlap(a, b, (21, 30), 10) == 10

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            top_n_overlap([], [], (0, 5), 10)
