"""Tests for regions, key periods, and peak-hour classification."""

import pytest

from repro.core.regions import (
    KEY_PERIODS,
    MAJOR_REGIONS,
    PEAK_HOURS,
    KeyPeriod,
    Region,
    hour_of_day,
    is_peak_hour,
    local_hour,
)


class TestHourOfDay:
    def test_epoch_is_midnight(self):
        assert hour_of_day(0.0) == 0

    def test_wraps_daily(self):
        assert hour_of_day(86400.0 + 3 * 3600) == 3

    def test_fractional_seconds(self):
        assert hour_of_day(3599.9) == 0
        assert hour_of_day(3600.0) == 1


class TestKeyPeriods:
    def test_four_periods(self):
        assert len(KEY_PERIODS) == 4
        assert {p.start_hour for p in KEY_PERIODS} == {3, 11, 13, 19}

    def test_labels(self):
        assert KeyPeriod.H03.label == "03:00-04:00"
        assert KeyPeriod.H19.label == "19:00-20:00"


class TestPeakHours:
    def test_h03_na_peak_eu_sink(self):
        # Section 4.2: "03:00-04:00 (peak in North America, sink for Europe)"
        assert 3 in PEAK_HOURS[Region.NORTH_AMERICA]
        assert 3 not in PEAK_HOURS[Region.EUROPE]

    def test_h11_na_sink_eu_peak(self):
        assert 11 not in PEAK_HOURS[Region.NORTH_AMERICA]
        assert 11 in PEAK_HOURS[Region.EUROPE]

    def test_h13_eu_and_asia_peak(self):
        assert 13 in PEAK_HOURS[Region.EUROPE]
        assert 13 in PEAK_HOURS[Region.ASIA]
        assert 13 not in PEAK_HOURS[Region.NORTH_AMERICA]

    def test_h19_joint_na_eu_peak(self):
        assert 19 in PEAK_HOURS[Region.NORTH_AMERICA]
        assert 19 in PEAK_HOURS[Region.EUROPE]

    def test_is_peak_hour_uses_timestamp(self):
        assert is_peak_hour(Region.NORTH_AMERICA, 3 * 3600.0)
        assert not is_peak_hour(Region.NORTH_AMERICA, 11 * 3600.0)
        # second day, same hour
        assert is_peak_hour(Region.NORTH_AMERICA, 86400.0 + 3 * 3600.0)


class TestRegions:
    def test_major_regions(self):
        assert Region.OTHER not in MAJOR_REGIONS
        assert len(MAJOR_REGIONS) == 3

    def test_short_names(self):
        assert Region.NORTH_AMERICA.short == "NA"
        assert Region.EUROPE.short == "EU"
        assert Region.ASIA.short == "AS"
        assert Region.OTHER.short == "OT"

    def test_local_hour_offsets(self):
        # Noon in Dortmund is early morning in North America (-7).
        assert local_hour(Region.NORTH_AMERICA, 12 * 3600.0) == 5
        assert local_hour(Region.EUROPE, 12 * 3600.0) == 12
        assert local_hour(Region.ASIA, 12 * 3600.0) == 19

    def test_local_hour_wraps(self):
        assert local_hour(Region.ASIA, 20 * 3600.0) == 3
