"""Tests for the Figure 12 synthetic workload generator."""

import numpy as np
import pytest

from repro.core import Region, SyntheticWorkloadGenerator, WorkloadModel
from repro.core.model import WorkloadModel as WM
from repro.core.popularity import QueryUniverse


@pytest.fixture(scope="module")
def sessions():
    gen = SyntheticWorkloadGenerator(n_peers=150, seed=9)
    return gen.generate(duration_seconds=6 * 3600.0)


class TestGeneration:
    def test_sessions_in_start_order(self, sessions):
        starts = [s.start for s in sessions]
        assert starts == sorted(starts)

    def test_steady_state_replacement(self):
        gen = SyntheticWorkloadGenerator(n_peers=10, seed=1)
        out = gen.generate(duration_seconds=7200.0)
        # Every slot is busy from t=0, so at least n_peers sessions exist
        # and each slot's sessions are back to back.
        assert len(out) >= 10
        first_starts = sorted(s.start for s in out)[:10]
        assert all(t == 0.0 for t in first_starts)

    def test_passive_fraction_band(self, sessions):
        frac = np.mean([s.passive for s in sessions])
        assert 0.70 <= frac <= 0.92  # Fig. 4 bands plus sampling noise

    def test_active_sessions_have_queries(self, sessions):
        for s in sessions:
            if s.passive:
                assert not s.queries
            else:
                assert s.queries

    def test_query_offsets_within_session(self, sessions):
        for s in sessions:
            for q in s.queries:
                assert 0.0 <= q.offset <= s.duration + 1e-9

    def test_query_offsets_sorted(self, sessions):
        for s in sessions:
            offsets = [q.offset for q in s.queries]
            assert offsets == sorted(offsets)

    def test_regions_are_major_only(self, sessions):
        assert {s.region for s in sessions} <= {
            Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA
        }

    def test_determinism(self):
        a = SyntheticWorkloadGenerator(n_peers=20, seed=77).generate(3600.0)
        b = SyntheticWorkloadGenerator(n_peers=20, seed=77).generate(3600.0)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x.start == y.start and x.duration == y.duration
            assert [q.keywords for q in x.queries] == [q.keywords for q in y.queries]

    def test_seed_changes_output(self):
        a = SyntheticWorkloadGenerator(n_peers=20, seed=1).generate(3600.0)
        b = SyntheticWorkloadGenerator(n_peers=20, seed=2).generate(3600.0)
        assert [s.duration for s in a] != [s.duration for s in b]

    def test_max_session_cap(self):
        gen = SyntheticWorkloadGenerator(n_peers=50, seed=3, max_session_seconds=1800.0)
        out = gen.generate(3600.0)
        assert max(s.duration for s in out) <= 1800.0

    def test_query_classes_follow_region(self, sessions):
        na_queries = [
            q for s in sessions if s.region is Region.NORTH_AMERICA for q in s.queries
        ]
        if na_queries:
            assert not any("eu_only" == q.query_class for q in na_queries)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadGenerator(n_peers=0)
        gen = SyntheticWorkloadGenerator(n_peers=5)
        with pytest.raises(ValueError):
            gen.generate(duration_seconds=0.0)


class TestWorkloadModel:
    def test_paper_model_complete(self):
        model = WorkloadModel.paper()
        assert model.name == "paper"
        mix = model.geographic_mix(12)
        assert sum(mix.values()) == pytest.approx(1.0)
        dist = model.passive_duration(Region.EUROPE, True)
        assert dist.cdf(1e9) == pytest.approx(1.0, abs=1e-6)

    def test_from_fits_falls_back_to_paper(self):
        fitted = WM.from_fits(
            passive_duration={}, queries_per_session={},
            first_query={}, interarrival={}, last_query={},
            name="empty",
        )
        paper = WM.paper()
        a = fitted.passive_duration(Region.ASIA, True)
        b = paper.passive_duration(Region.ASIA, True)
        assert a.cdf(150.0) == pytest.approx(b.cdf(150.0))

    def test_from_fits_uses_override(self):
        from repro.core.distributions import Lognormal

        override = Lognormal(8.0, 0.5)
        fitted = WM.from_fits(
            passive_duration={(Region.ASIA, True): override},
            queries_per_session={}, first_query={}, interarrival={}, last_query={},
        )
        assert fitted.passive_duration(Region.ASIA, True) is override
        # Other keys still fall back.
        assert fitted.passive_duration(Region.ASIA, False) is not override

    def test_generator_accepts_fitted_model(self):
        from repro.core.distributions import Lognormal

        model = WM.from_fits(
            passive_duration={}, queries_per_session={Region.EUROPE: Lognormal(1.0, 0.5)},
            first_query={}, interarrival={}, last_query={},
        )
        gen = SyntheticWorkloadGenerator(model=model, n_peers=10, seed=4)
        out = gen.generate(1800.0)
        assert out
