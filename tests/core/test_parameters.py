"""Tests anchoring the parameter registry to the paper's statements."""

import numpy as np
import pytest

from repro.core.parameters import (
    MIN_SESSION_SECONDS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    QUERY_CLASS_SIZES,
    ZIPF_ALPHA,
    first_query_class,
    first_query_model,
    geographic_mix,
    interarrival_model,
    interarrival_query_class,
    last_query_class,
    last_query_model,
    passive_duration_model,
    passive_fraction,
    queries_per_session_model,
)
from repro.core.regions import Region

RNG = np.random.default_rng(3)
MAJOR = (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA)


class TestGeographicMix:
    def test_sums_to_one(self):
        for hour in range(24):
            mix = geographic_mix(hour)
            assert sum(mix.values()) == pytest.approx(1.0, abs=1e-9)

    def test_paper_example_mixes(self):
        # Section 4.1: "75, 15, 5 at 00:00, or 80, 5, 5 at 3:00, or
        # 60, 20, 15 at 12:00" (NA, EU, AS percent).
        mix0 = geographic_mix(0)
        assert mix0[Region.NORTH_AMERICA] == pytest.approx(0.75, abs=0.03)
        assert mix0[Region.EUROPE] == pytest.approx(0.15, abs=0.03)
        mix3 = geographic_mix(3)
        assert mix3[Region.NORTH_AMERICA] == pytest.approx(0.80, abs=0.03)
        mix12 = geographic_mix(12)
        assert mix12[Region.EUROPE] == pytest.approx(0.20, abs=0.03)
        assert mix12[Region.ASIA] == pytest.approx(0.13, abs=0.03)

    def test_na_band(self):
        # "the fraction of North American peers decreases from about 80%
        # to about 60%".
        values = [geographic_mix(h)[Region.NORTH_AMERICA] for h in range(24)]
        assert 0.58 <= min(values) <= 0.62
        assert 0.78 <= max(values) <= 0.82

    def test_other_band(self):
        # "peers from other geographical regions ... approximately 5-10%".
        values = [geographic_mix(h)[Region.OTHER] for h in range(24)]
        assert min(values) >= 0.02
        assert max(values) <= 0.13

    def test_hour_wraps(self):
        assert geographic_mix(24) == geographic_mix(0)


class TestPassiveFraction:
    def test_paper_bands(self):
        # Fig. 4: NA 80-85%, EU 75-80%, AS 80-90%.
        for hour in range(24):
            assert 0.78 <= passive_fraction(Region.NORTH_AMERICA, hour) <= 0.87
            assert 0.73 <= passive_fraction(Region.EUROPE, hour) <= 0.82
            assert 0.80 <= passive_fraction(Region.ASIA, hour) <= 0.90

    def test_small_diurnal_swing(self):
        for region in MAJOR:
            values = [passive_fraction(region, h) for h in range(24)]
            assert max(values) - min(values) <= 0.06  # "about 5%"


class TestPassiveDuration:
    @pytest.mark.parametrize("region,expected", [
        (Region.NORTH_AMERICA, 0.75),
        (Region.EUROPE, 0.55),
        (Region.ASIA, 0.85),
    ])
    def test_fig5_two_minute_anchor(self, region, expected):
        # Fig. 5(a): P[duration < 2 min] per region (peak parameters).
        dist = passive_duration_model(region, peak=True)
        s = dist.sample(RNG, 20_000)
        assert (s <= 120.0).mean() == pytest.approx(expected, abs=0.02)

    def test_all_above_filter_floor(self):
        for region in MAJOR:
            for peak in (True, False):
                s = passive_duration_model(region, peak).sample(RNG, 5_000)
                assert s.min() >= MIN_SESSION_SECONDS

    def test_nonpeak_sessions_longer(self):
        # Fig. 5(b)/(c): sessions started off-peak are notably longer.
        for region in MAJOR:
            peak = passive_duration_model(region, True).sample(RNG, 20_000)
            off = passive_duration_model(region, False).sample(RNG, 20_000)
            assert np.median(off) > np.median(peak)

    def test_other_region_aliases_na(self):
        a = passive_duration_model(Region.OTHER, True)
        b = passive_duration_model(Region.NORTH_AMERICA, True)
        assert a.cdf(300.0) == pytest.approx(b.cdf(300.0))


class TestQueriesPerSession:
    def test_table_a2_verbatim(self):
        na = queries_per_session_model(Region.NORTH_AMERICA)
        assert (na.mu, na.sigma) == (-0.0673, 1.360)
        eu = queries_per_session_model(Region.EUROPE)
        assert (eu.mu, eu.sigma) == (0.520, 1.306)
        asia = queries_per_session_model(Region.ASIA)
        assert (asia.mu, asia.sigma) == (-1.029, 1.618)

    def test_europe_most_queries(self):
        # "European peers issue significantly more queries in a session".
        eu = queries_per_session_model(Region.EUROPE).median()
        na = queries_per_session_model(Region.NORTH_AMERICA).median()
        asia = queries_per_session_model(Region.ASIA).median()
        assert eu > na > asia


class TestQueryClasses:
    def test_first_query_classes(self):
        assert first_query_class(1) == "<3"
        assert first_query_class(2) == "<3"
        assert first_query_class(3) == "=3"
        assert first_query_class(10) == ">3"

    def test_interarrival_classes(self):
        assert interarrival_query_class(2) == "=2"
        assert interarrival_query_class(5) == "3-7"
        assert interarrival_query_class(8) == ">7"

    def test_last_query_classes(self):
        assert last_query_class(1) == "1"
        assert last_query_class(7) == "2-7"
        assert last_query_class(8) == ">7"


class TestFirstQueryModel:
    def test_asia_faster_than_europe(self):
        # Fig. 7(a): 90% of Asian first queries within 90 s; Europe's
        # tail stretches to 1000 s.
        asia = first_query_model(Region.ASIA, True, 2).sample(RNG, 20_000)
        eu = first_query_model(Region.EUROPE, True, 2).sample(RNG, 20_000)
        assert (asia <= 90.0).mean() > 0.85
        assert (eu <= 90.0).mean() < 0.80

    def test_more_queries_later_first_query(self):
        few = first_query_model(Region.NORTH_AMERICA, True, 1).sample(RNG, 20_000)
        many = first_query_model(Region.NORTH_AMERICA, True, 10).sample(RNG, 20_000)
        assert np.percentile(many, 90) > np.percentile(few, 90)


class TestInterarrivalModel:
    def test_fig8_100s_anchors(self):
        # P[gap < 100 s]: 90% EU, 80% AS, 70% NA (peak).
        for region, expected in [
            (Region.EUROPE, 0.88), (Region.ASIA, 0.80), (Region.NORTH_AMERICA, 0.70),
        ]:
            s = interarrival_model(region, True, 5).sample(RNG, 20_000)
            assert (s < 103.0).mean() == pytest.approx(expected, abs=0.05)

    def test_eu_conditioned_on_queries(self):
        # Fig. 8(b): many-query EU sessions have smaller interarrivals.
        few = interarrival_model(Region.EUROPE, True, 2).sample(RNG, 20_000)
        many = interarrival_model(Region.EUROPE, True, 20).sample(RNG, 20_000)
        assert np.median(many) < np.median(few)

    def test_na_not_conditioned(self):
        a = interarrival_model(Region.NORTH_AMERICA, True, 2)
        b = interarrival_model(Region.NORTH_AMERICA, True, 20)
        assert a.cdf(50.0) == pytest.approx(b.cdf(50.0))


class TestLastQueryModel:
    def test_table_a5_verbatim(self):
        dist = last_query_model(Region.NORTH_AMERICA, True, 1)
        assert (dist.mu, dist.sigma) == (4.879, 2.361)

    def test_asia_closes_faster(self):
        # Fig. 9(a): P[> 1000 s] is ~20% NA/EU but ~10% Asia.
        na = last_query_model(Region.NORTH_AMERICA, True, 3).sample(RNG, 20_000)
        asia = last_query_model(Region.ASIA, True, 3).sample(RNG, 20_000)
        assert (asia > 1000.0).mean() < (na > 1000.0).mean()

    def test_positive_correlation_with_queries(self):
        one = last_query_model(Region.NORTH_AMERICA, True, 1).median()
        many = last_query_model(Region.NORTH_AMERICA, True, 10).median()
        assert many > one


class TestQueryClassSizes:
    def test_table3_totals_recoverable(self):
        # Our *_only fields are disjoint; adding back the intersections
        # must reproduce the published per-region totals.
        sizes = QUERY_CLASS_SIZES[1]
        assert sizes.na_only + sizes.na_eu + sizes.na_as + sizes.all_three == 1990
        assert sizes.eu_only + sizes.na_eu + sizes.eu_as + sizes.all_three == 1934
        assert sizes.as_only + sizes.na_as + sizes.eu_as + sizes.all_three == 153

    def test_periods_grow(self):
        assert QUERY_CLASS_SIZES[4].na_only > QUERY_CLASS_SIZES[2].na_only > QUERY_CLASS_SIZES[1].na_only

    def test_for_region_views(self):
        view = QUERY_CLASS_SIZES[1].for_region(Region.NORTH_AMERICA)
        assert view["own"] == QUERY_CLASS_SIZES[1].na_only
        with pytest.raises(ValueError):
            QUERY_CLASS_SIZES[1].for_region(Region.OTHER)


class TestPaperConstants:
    def test_zipf_ordering(self):
        assert ZIPF_ALPHA["na_only"] > ZIPF_ALPHA["eu_only"]
        assert ZIPF_ALPHA["na_eu_tail"] > ZIPF_ALPHA["na_eu_body"]

    def test_table1_reference(self):
        assert PAPER_TABLE1["direct_connections"] == 4_361_965
        assert PAPER_TABLE1["hop1_query_messages"] == 1_735_538

    def test_table2_arithmetic(self):
        # Rules 1-3 removals must account for initial - final queries.
        t = PAPER_TABLE2
        removed = (t["rule1_removed_queries"] + t["rule2_removed_queries"]
                   + t["rule3_removed_queries"])
        assert t["initial_queries"] - removed == pytest.approx(t["final_queries"], abs=10)
