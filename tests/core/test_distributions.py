"""Unit tests for the model distribution families."""

import math

import numpy as np
import pytest

from repro.core.distributions import (
    Empirical,
    Exponential,
    Lognormal,
    Pareto,
    Spliced,
    Truncated,
    Uniform,
    Weibull,
    Zipf,
)

RNG = np.random.default_rng(7)


class TestLognormal:
    def test_median_is_exp_mu(self):
        dist = Lognormal(mu=2.0, sigma=1.5)
        assert dist.median() == pytest.approx(math.exp(2.0), rel=1e-9)

    def test_mean_closed_form(self):
        dist = Lognormal(mu=1.0, sigma=0.5)
        assert dist.mean() == pytest.approx(math.exp(1.0 + 0.125), rel=1e-12)

    def test_cdf_at_zero_and_below(self):
        dist = Lognormal(0.0, 1.0)
        assert dist.cdf(0.0) == 0.0
        assert dist.cdf(np.array([-5.0, 0.0]))[0] == 0.0

    def test_ppf_inverts_cdf(self):
        dist = Lognormal(2.108, 2.502)
        for q in (0.01, 0.25, 0.5, 0.75, 0.99):
            assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-9)

    def test_sampling_matches_moments(self):
        dist = Lognormal(1.0, 0.7)
        s = dist.sample(RNG, 60_000)
        assert np.log(s).mean() == pytest.approx(1.0, abs=0.02)
        assert np.log(s).std() == pytest.approx(0.7, abs=0.02)

    def test_pdf_integrates_near_one(self):
        dist = Lognormal(0.5, 0.8)
        x = np.linspace(1e-4, 60, 300_000)
        assert np.trapezoid(dist.pdf(x), x) == pytest.approx(1.0, abs=1e-3)

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            Lognormal(0.0, 0.0)


class TestWeibull:
    def test_paper_parameterization(self):
        # CDF(x) = 1 - exp(-lam * x**alpha), as printed in Table A.3.
        dist = Weibull(alpha=1.477, lam=0.005252)
        x = 30.0
        expected = 1.0 - math.exp(-0.005252 * x**1.477)
        assert dist.cdf(x) == pytest.approx(expected, rel=1e-12)

    def test_scale_conversion(self):
        dist = Weibull(alpha=2.0, lam=0.25)
        assert dist.scale == pytest.approx(2.0)

    def test_ppf_inverts_cdf(self):
        dist = Weibull(0.9821, 0.02662)
        for q in (0.1, 0.5, 0.9):
            assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-10)

    def test_mean_gamma_form(self):
        dist = Weibull(alpha=1.0, lam=0.1)  # exponential with rate 0.1
        assert dist.mean() == pytest.approx(10.0, rel=1e-9)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Weibull(0.0, 1.0)
        with pytest.raises(ValueError):
            Weibull(1.0, -1.0)


class TestPareto:
    def test_ccdf_form(self):
        dist = Pareto(alpha=0.9041, beta=103.0)
        assert dist.ccdf(103.0) == pytest.approx(1.0, abs=1e-12)
        assert dist.ccdf(206.0) == pytest.approx(0.5**0.9041, rel=1e-9)

    def test_support_starts_at_beta(self):
        dist = Pareto(2.0, 10.0)
        assert dist.cdf(5.0) == 0.0
        assert float(dist.ppf(0.0)) == pytest.approx(10.0)

    def test_mean_infinite_for_alpha_below_one(self):
        assert math.isinf(Pareto(0.9, 103.0).mean())
        assert Pareto(2.0, 10.0).mean() == pytest.approx(20.0)

    def test_sampling_tail_exponent(self):
        dist = Pareto(1.5, 1.0)
        s = dist.sample(RNG, 100_000)
        # Hill estimator should recover the exponent.
        alpha_hat = s.size / np.log(s).sum()
        assert alpha_hat == pytest.approx(1.5, rel=0.03)


class TestExponentialUniform:
    def test_exponential_mean(self):
        assert Exponential(0.25).mean() == pytest.approx(4.0)

    def test_exponential_ppf(self):
        dist = Exponential(1.0)
        assert dist.ppf(1.0 - math.exp(-2.0)) == pytest.approx(2.0, rel=1e-9)

    def test_uniform_bounds(self):
        dist = Uniform(3.0, 7.0)
        s = dist.sample(RNG, 5000)
        assert s.min() >= 3.0 and s.max() <= 7.0
        assert dist.mean() == pytest.approx(5.0)

    def test_uniform_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 5.0)


class TestZipf:
    def test_pmf_normalizes(self):
        z = Zipf(0.386, 100)
        total = sum(z.pmf(r) for r in range(1, 101))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_pmf_ratio_follows_exponent(self):
        z = Zipf(1.0, 50)
        assert z.pmf(1) / z.pmf(10) == pytest.approx(10.0, rel=1e-9)

    def test_sample_range(self):
        z = Zipf(0.5, 20)
        s = z.sample(RNG, 2000)
        assert s.min() >= 1 and s.max() <= 20

    def test_sample_rank_one_most_frequent(self):
        z = Zipf(1.2, 30)
        s = z.sample(RNG, 20_000)
        counts = np.bincount(s, minlength=31)
        assert counts[1] == counts[1:].max()

    def test_pmf_outside_support_is_zero(self):
        z = Zipf(1.0, 5)
        assert z.pmf(0) == 0.0
        assert z.pmf(6) == 0.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Zipf(-0.1, 10)
        with pytest.raises(ValueError):
            Zipf(1.0, 0)


class TestTruncated:
    def test_support_respected(self):
        base = Lognormal(2.0, 2.0)
        dist = Truncated(base, 64.0, 120.0)
        s = dist.sample(RNG, 10_000)
        assert s.min() >= 64.0
        assert s.max() <= 120.0

    def test_cdf_boundaries(self):
        dist = Truncated(Lognormal(0.0, 1.0), 1.0, 5.0)
        assert dist.cdf(1.0) == pytest.approx(0.0, abs=1e-12)
        assert dist.cdf(5.0) == pytest.approx(1.0, abs=1e-12)

    def test_conditional_law(self):
        # P[X <= x | a < X <= b] must match the base law's conditional.
        base = Lognormal(1.0, 1.0)
        dist = Truncated(base, 2.0, 10.0)
        x = 5.0
        expected = (base.cdf(x) - base.cdf(2.0)) / (base.cdf(10.0) - base.cdf(2.0))
        assert dist.cdf(x) == pytest.approx(expected, rel=1e-9)

    def test_rejects_empty_mass(self):
        with pytest.raises(ValueError):
            Truncated(Pareto(1.0, 100.0), 1.0, 2.0)  # no mass below beta


class TestSpliced:
    def make(self):
        return Spliced(
            body=Lognormal(2.108, 2.502),
            tail=Lognormal(6.397, 2.749),
            boundary=120.0,
            body_weight=0.75,
            body_low=64.0,
        )

    def test_body_weight_realized(self):
        dist = self.make()
        s = dist.sample(RNG, 40_000)
        assert (s <= 120.0).mean() == pytest.approx(0.75, abs=0.01)

    def test_support_floor(self):
        s = self.make().sample(RNG, 20_000)
        assert s.min() >= 64.0

    def test_cdf_continuous_at_boundary(self):
        dist = self.make()
        assert dist.cdf(120.0) == pytest.approx(0.75, abs=1e-9)

    def test_ppf_monotone(self):
        dist = self.make()
        qs = np.linspace(0.01, 0.99, 50)
        xs = dist.ppf(qs)
        assert np.all(np.diff(xs) >= 0)

    def test_rejects_degenerate_weight(self):
        with pytest.raises(ValueError):
            Spliced(Lognormal(0, 1), Lognormal(0, 1), 10.0, 0.0)
        with pytest.raises(ValueError):
            Spliced(Lognormal(0, 1), Lognormal(0, 1), 10.0, 1.0)

    def test_rejects_body_low_above_boundary(self):
        with pytest.raises(ValueError):
            Spliced(Lognormal(0, 1), Lognormal(0, 1), 10.0, 0.5, body_low=20.0)


class TestEmpirical:
    def test_cdf_step(self):
        dist = Empirical([1.0, 2.0, 3.0, 4.0])
        assert dist.cdf(2.0) == pytest.approx(0.5)
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(4.0) == 1.0

    def test_sample_from_data(self):
        data = [5.0, 7.0, 9.0]
        s = Empirical(data).sample(RNG, 1000)
        assert set(np.unique(s)) <= set(data)

    def test_mean(self):
        assert Empirical([1.0, 3.0]).mean() == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Empirical([])
