"""Tests for the validation utilities and workload export/import."""

import numpy as np
import pytest

from repro.core import Region, SyntheticWorkloadGenerator
from repro.core.distributions import Lognormal
from repro.core.validation import (
    ccdf_max_gap,
    compare_models,
    ks_two_sample,
    quantile_report,
)
from repro.core.workload_io import from_jsonl, to_csv, to_event_schedule, to_jsonl

RNG = np.random.default_rng(55)


class TestKsTwoSample:
    def test_same_distribution_not_rejected(self):
        a = Lognormal(1.0, 0.5).sample(RNG, 2000)
        b = Lognormal(1.0, 0.5).sample(RNG, 2000)
        result = ks_two_sample(a, b)
        assert not result.rejects_at(0.01)

    def test_different_distributions_rejected(self):
        a = Lognormal(1.0, 0.5).sample(RNG, 2000)
        b = Lognormal(3.0, 0.5).sample(RNG, 2000)
        result = ks_two_sample(a, b)
        assert result.rejects_at(0.01)
        assert result.statistic > 0.5

    def test_counts_recorded(self):
        result = ks_two_sample([1.0, 2.0, 3.0], [1.5, 2.5])
        assert (result.n_a, result.n_b) == (3, 2)

    def test_too_few(self):
        with pytest.raises(ValueError):
            ks_two_sample([1.0], [1.0, 2.0])


class TestQuantileReport:
    def test_identical_samples(self):
        a = list(range(1, 101))
        rows = quantile_report(a, a)
        for row in rows:
            assert row["log10_ratio"] == pytest.approx(0.0)

    def test_shifted_sample(self):
        a = np.array(range(1, 101), dtype=float)
        rows = quantile_report(a, a * 10.0)
        for row in rows:
            assert row["log10_ratio"] == pytest.approx(-1.0, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile_report([], [1.0])


class TestCcdfMaxGap:
    def test_identical_zero_gap(self):
        a = [1.0, 2.0, 3.0]
        assert ccdf_max_gap(a, a) == 0.0

    def test_disjoint_full_gap(self):
        assert ccdf_max_gap([1.0, 2.0], [10.0, 20.0]) == pytest.approx(1.0)

    def test_matches_ks_statistic(self):
        a = Lognormal(0.0, 1.0).sample(RNG, 500)
        b = Lognormal(0.5, 1.0).sample(RNG, 700)
        assert ccdf_max_gap(a, b) == pytest.approx(ks_two_sample(a, b).statistic, abs=1e-9)


class TestCompareModels:
    def test_verdicts(self):
        close = Lognormal(1.0, 1.0).sample(RNG, 3000)
        close_b = Lognormal(1.0, 1.0).sample(RNG, 3000)
        far = Lognormal(4.0, 1.0).sample(RNG, 3000)
        verdicts = compare_models({
            "same": (close, close_b),
            "shifted": (close, far),
        })
        by_name = {v.name: v for v in verdicts}
        assert by_name["same"].close
        assert not by_name["shifted"].close
        assert "DIVERGENT" in str(by_name["shifted"])

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            compare_models({}, tolerance=0.0)


class TestWorkloadIo:
    @pytest.fixture(scope="class")
    def sessions(self):
        return SyntheticWorkloadGenerator(n_peers=30, seed=3).generate(1800.0)

    def test_jsonl_roundtrip(self, sessions, tmp_path):
        path = tmp_path / "workload.jsonl"
        written = to_jsonl(sessions, path)
        assert written == len(sessions)
        loaded = from_jsonl(path)
        assert len(loaded) == len(sessions)
        for a, b in zip(sessions, loaded):
            assert a.region == b.region
            assert a.start == b.start
            assert a.duration == b.duration
            assert [q.keywords for q in a.queries] == [q.keywords for q in b.queries]

    def test_invalid_jsonl_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            from_jsonl(path)

    def test_csv_summary(self, sessions, tmp_path):
        path = tmp_path / "workload.csv"
        rows = to_csv(sessions, path)
        lines = path.read_text().splitlines()
        assert len(lines) == rows + 1  # header
        assert lines[0].startswith("region,start,duration")

    def test_event_schedule(self, sessions):
        events = to_event_schedule(sessions)
        times = [e[0] for e in events]
        assert times == sorted(times)
        kinds = {e[2] for e in events}
        assert kinds == {"connect", "query", "disconnect"} or kinds == {"connect", "disconnect"}
        # Each peer connects exactly once and disconnects exactly once.
        connects = [e[1] for e in events if e[2] == "connect"]
        disconnects = [e[1] for e in events if e[2] == "disconnect"]
        assert sorted(connects) == sorted(set(connects))
        assert sorted(connects) == sorted(disconnects)

    def test_schedule_queries_inside_sessions(self, sessions):
        events = to_event_schedule(sessions)
        window = {}
        for time, peer, kind, _ in events:
            if kind == "connect":
                window[peer] = [time, None]
            elif kind == "disconnect":
                window[peer][1] = time
        for time, peer, kind, _ in events:
            if kind == "query":
                lo, hi = window[peer]
                assert lo <= time <= (hi if hi is not None else float("inf")) + 1e-9
