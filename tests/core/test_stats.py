"""Unit tests for empirical statistics helpers."""

import numpy as np
import pytest

from repro.core.stats import (
    Ccdf,
    TimeOfDayBinner,
    ccdf_at,
    empirical_ccdf,
    log_bins,
    rank_pmf,
    ratio_binner_fraction,
)


class TestEmpiricalCcdf:
    def test_simple_values(self):
        ccdf = empirical_ccdf([1.0, 2.0, 3.0, 4.0])
        assert ccdf.at(2.0) == pytest.approx(0.5)
        assert ccdf.at(0.5) == 1.0
        assert ccdf.at(4.0) == 0.0

    def test_duplicates_collapse(self):
        ccdf = empirical_ccdf([1.0, 1.0, 1.0, 2.0])
        assert len(ccdf) == 2
        assert ccdf.at(1.0) == pytest.approx(0.25)

    def test_monotone_nonincreasing(self):
        rng = np.random.default_rng(0)
        ccdf = empirical_ccdf(rng.exponential(5.0, 500))
        assert np.all(np.diff(ccdf.fraction) <= 0)

    def test_quantile_exceeded(self):
        ccdf = empirical_ccdf(list(range(1, 101)))
        # P[X > 90] = 0.10, so the 10%-exceedance point is 90.
        assert ccdf.quantile_exceeded(0.10) == pytest.approx(90.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_ccdf([])

    def test_ccdf_at_points(self):
        out = ccdf_at([1.0, 2.0, 3.0, 4.0], [0.0, 2.5, 10.0])
        assert out == pytest.approx([1.0, 0.5, 0.0])


class TestRankPmf:
    def test_sorted_descending_and_normalized(self):
        pmf = rank_pmf({"a": 10, "b": 30, "c": 60})
        assert pmf == pytest.approx([0.6, 0.3, 0.1])

    def test_top_truncation(self):
        pmf = rank_pmf({"a": 5, "b": 4, "c": 1}, top=2)
        assert len(pmf) == 2
        assert pmf.sum() == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rank_pmf({})


class TestLogBins:
    def test_spans_range(self):
        bins = log_bins(1.0, 10_000.0)
        assert bins[0] == pytest.approx(1.0)
        assert bins[-1] == pytest.approx(10_000.0)

    def test_log_spacing(self):
        bins = log_bins(1.0, 100.0, per_decade=5)
        ratios = bins[1:] / bins[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            log_bins(0.0, 10.0)
        with pytest.raises(ValueError):
            log_bins(10.0, 1.0)


class TestTimeOfDayBinner:
    def test_binning_by_hour(self):
        binner = TimeOfDayBinner()
        binner.add(3 * 3600 + 10)       # day 0, hour 3
        binner.add(86400 + 3 * 3600)    # day 1, hour 3
        binner.add(86400 + 5 * 3600)    # day 1, hour 5
        avg = binner.average()
        assert avg[3] == pytest.approx(1.0)
        assert avg[5] == pytest.approx(0.5)

    def test_min_max_curves(self):
        binner = TimeOfDayBinner()
        binner.add(0.0, 2.0)           # day 0, hour 0
        binner.add(86400.0, 6.0)       # day 1, hour 0
        assert binner.minimum()[0] == pytest.approx(2.0)
        assert binner.maximum()[0] == pytest.approx(6.0)

    def test_weighted_values(self):
        binner = TimeOfDayBinner(bin_seconds=1800)
        binner.add(900.0, 5.0)
        assert binner.day_curve(0)[0] == pytest.approx(5.0)
        assert binner.n_bins == 48

    def test_rejects_non_divisor_bin(self):
        with pytest.raises(ValueError):
            TimeOfDayBinner(bin_seconds=7000)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimeOfDayBinner().average()

    def test_bin_starts(self):
        binner = TimeOfDayBinner(bin_seconds=1800)
        starts = binner.bin_starts_hours()
        assert starts[0] == 0.0
        assert starts[1] == pytest.approx(0.5)


class TestRatioBinnerFraction:
    def test_fraction_computed_per_day(self):
        num, den = TimeOfDayBinner(), TimeOfDayBinner()
        for _ in range(2):
            den.add(3600.0)
        num.add(3600.0)
        den.add(7200.0)
        avg, lo, hi = ratio_binner_fraction(num, den)
        assert avg[1] == pytest.approx(0.5)
        assert np.isnan(avg[5])  # no sessions at hour 5

    def test_requires_overlapping_days(self):
        num, den = TimeOfDayBinner(), TimeOfDayBinner()
        num.add(0.0)
        den.add(86400.0)
        with pytest.raises(ValueError):
            ratio_binner_fraction(num, den)
