"""Tests for the vectorized columnar workload generator backend.

The contract with the event backend is *distributional equivalence*
(same model, different draw order → KS-indistinguishable realizations),
plus hard guarantees of its own: byte-identical output across runs and
worker counts, lossless round-trips to session objects and ``.npz``.
"""

import numpy as np
import pytest

from repro.core import (
    ColumnarWorkload,
    SyntheticWorkloadGenerator,
    from_npz,
    generate_columnar_workload,
    to_npz,
)
from repro.core.events import GeneratedQuery, GeneratedSession
from repro.core.generator_bench import generator_ks_checks
from repro.core.generator_columnar import SLOTS_PER_SHARD, WORKLOAD_REGION_CODE
from repro.core.model import WorkloadModel
from repro.core.popularity import CLASS_ORDER, QueryUniverse
from repro.core.regions import MAJOR_REGIONS, Region


@pytest.fixture(scope="module")
def workload():
    gen = SyntheticWorkloadGenerator(n_peers=120, seed=9)
    return gen.generate_columnar(duration_seconds=4 * 3600.0)


class TestStructure:
    def test_validates(self, workload):
        assert workload.validate() is workload
        assert workload.n_sessions > 120
        assert workload.n_queries > 0

    def test_sessions_sorted_by_start(self, workload):
        assert (np.diff(workload.session_start) >= 0).all()

    def test_steady_state_first_wave(self, workload):
        # Every slot starts its first session at t=0.
        assert (workload.session_start[:120] == 0.0).all()

    def test_queries_grouped_and_sorted(self, workload):
        assert (np.diff(workload.query_session) >= 0).all()
        same = np.diff(workload.query_session) == 0
        assert (np.diff(workload.query_offset)[same] >= 0).all()

    def test_passive_sessions_have_no_queries(self, workload):
        assert not workload.session_passive[workload.query_session].any()

    def test_offsets_within_duration(self, workload):
        assert (
            workload.query_offset
            <= workload.session_duration[workload.query_session] + 1e-9
        ).all()
        assert (workload.query_offset >= 0).all()

    def test_only_major_regions_emitted(self, workload):
        assert set(np.unique(workload.session_region)) <= {
            WORKLOAD_REGION_CODE[r] for r in MAJOR_REGIONS
        }

    def test_query_counts_and_index_agree(self, workload):
        counts = workload.query_counts()
        index = workload.query_index()
        assert counts.sum() == workload.n_queries
        assert (np.diff(index) == counts).all()


class TestDeterminism:
    def test_same_seed_identical(self):
        gen_a = SyntheticWorkloadGenerator(n_peers=60, seed=21)
        gen_b = SyntheticWorkloadGenerator(n_peers=60, seed=21)
        assert gen_a.generate_columnar(3600.0).equals(gen_b.generate_columnar(3600.0))

    def test_different_seed_differs(self):
        gen_a = SyntheticWorkloadGenerator(n_peers=60, seed=21)
        gen_b = SyntheticWorkloadGenerator(n_peers=60, seed=22)
        assert not gen_a.generate_columnar(3600.0).equals(gen_b.generate_columnar(3600.0))

    def test_jobs_do_not_change_output(self, monkeypatch):
        # Multi-shard run (n_peers > SLOTS_PER_SHARD); force the worker
        # pool to actually spawn even on a single-CPU host so the pooled
        # code path is exercised, not just the sequential fallback.
        import repro.core.kernels.sharding as sharding

        n_peers = SLOTS_PER_SHARD + 700
        gen = SyntheticWorkloadGenerator(n_peers=n_peers, seed=5)
        serial = gen.generate_columnar(900.0, jobs=1)
        monkeypatch.setattr(sharding, "available_cpus", lambda: 4)
        pooled_2 = gen.generate_columnar(900.0, jobs=2)
        pooled_4 = gen.generate_columnar(900.0, jobs=4)
        assert serial.equals(pooled_2)
        assert serial.equals(pooled_4)


class TestBackendEquivalence:
    def test_ks_equivalence_at_fixed_seed(self):
        # Session duration, queries/session, interarrival, first/last
        # query gaps, and the hourly region mix must all be
        # KS-indistinguishable between the two engines.
        duration = 12 * 3600.0
        event = ColumnarWorkload.from_sessions(
            SyntheticWorkloadGenerator(
                n_peers=250, seed=33, backend="event"
            ).iter_sessions(duration)
        )
        columnar = SyntheticWorkloadGenerator(
            n_peers=250, seed=33
        ).generate_columnar(duration)
        checks = generator_ks_checks(event, columnar)
        assert checks["ok"] is True, checks

    def test_backend_dispatch(self):
        col = SyntheticWorkloadGenerator(n_peers=30, seed=3)
        assert col.backend == "columnar"
        sessions = col.generate(1800.0)
        workload = col.generate_columnar(1800.0)
        assert len(sessions) == workload.n_sessions
        assert [s.start for s in sessions] == workload.session_start.tolist()
        event = SyntheticWorkloadGenerator(n_peers=30, seed=3, backend="event")
        assert event.generate(1800.0)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SyntheticWorkloadGenerator(backend="vectorized")

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            SyntheticWorkloadGenerator(jobs=0)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            SyntheticWorkloadGenerator(n_peers=5).generate_columnar(0.0)

    def test_fitted_model_accepted(self):
        # from_fits models close over the paper model; the conditional
        # grid must still materialize and the wave engine still run.
        model = WorkloadModel.from_fits(
            passive_duration={}, queries_per_session={},
            first_query={}, interarrival={}, last_query={},
        )
        workload = generate_columnar_workload(
            model=model, universe=QueryUniverse(), n_peers=40, seed=8,
            duration_seconds=1800.0,
        )
        assert workload.n_sessions >= 40


class TestRoundTrips:
    def test_sessions_round_trip(self, workload):
        rebuilt = ColumnarWorkload.from_sessions(workload.iter_sessions())
        assert workload.equals(rebuilt)

    def test_session_objects_well_formed(self, workload):
        session = next(workload.iter_sessions())
        assert isinstance(session, GeneratedSession)
        assert session.region in MAJOR_REGIONS
        for query in session.queries:
            assert isinstance(query, GeneratedQuery)
            assert query.query_class in {c.value for c in CLASS_ORDER}

    def test_npz_round_trip(self, workload, tmp_path):
        path = to_npz(workload, tmp_path / "w.npz")
        assert workload.equals(from_npz(path))

    def test_npz_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, values=np.arange(3))
        with pytest.raises(ValueError, match="not a columnar workload"):
            from_npz(path)

    def test_from_sessions_rejects_unknown_region(self):
        bad = GeneratedSession(
            region=Region.OTHER, start=0.0, duration=1.0, passive=True
        )
        # OTHER itself is representable; a non-Region value is not.
        assert ColumnarWorkload.from_sessions([bad]).n_sessions == 1
        with pytest.raises(ValueError, match="unknown region"):
            ColumnarWorkload.from_sessions(
                [GeneratedSession(region="mars", start=0.0, duration=1.0, passive=True)]
            )


class TestValidateFailures:
    def _arrays(self):
        return dict(
            session_region=np.zeros(2, dtype=np.int8),
            session_start=np.zeros(2),
            session_duration=np.ones(2),
            session_passive=np.array([False, True]),
            query_session=np.zeros(1, dtype=np.int64),
            query_offset=np.zeros(1),
            query_rank=np.ones(1, dtype=np.int64),
            query_class=np.zeros(1, dtype=np.int8),
            query_keywords=np.array(["q"]),
        )

    def test_length_mismatch(self):
        arrays = self._arrays()
        arrays["session_duration"] = np.ones(3)
        with pytest.raises(ValueError, match="rows"):
            ColumnarWorkload(**arrays).validate()

    def test_query_on_passive_session(self):
        arrays = self._arrays()
        arrays["query_session"] = np.array([1], dtype=np.int64)
        with pytest.raises(ValueError, match="passive"):
            ColumnarWorkload(**arrays).validate()

    def test_out_of_range_session_index(self):
        arrays = self._arrays()
        arrays["query_session"] = np.array([7], dtype=np.int64)
        with pytest.raises(ValueError, match="outside"):
            ColumnarWorkload(**arrays).validate()

    def test_ungrouped_queries(self):
        arrays = self._arrays()
        arrays["session_passive"] = np.array([False, False])
        arrays["query_session"] = np.array([1, 0], dtype=np.int64)
        for name in ("query_offset", "query_rank", "query_class"):
            arrays[name] = np.concatenate([arrays[name], arrays[name]])
        arrays["query_keywords"] = np.array(["q", "q"])
        with pytest.raises(ValueError, match="grouped"):
            ColumnarWorkload(**arrays).validate()

    def test_bad_rank(self):
        arrays = self._arrays()
        arrays["query_rank"] = np.zeros(1, dtype=np.int64)
        with pytest.raises(ValueError, match="ranks"):
            ColumnarWorkload(**arrays).validate()
