"""Parameter-recovery tests for every fitter."""

import math

import numpy as np
import pytest

from repro.core.distributions import Lognormal, Pareto, Truncated, Weibull, Zipf
from repro.core.fitting import (
    fit_lognormal,
    fit_lognormal_discrete,
    fit_lognormal_truncated,
    fit_pareto,
    fit_spliced,
    fit_weibull,
    fit_weibull_truncated,
    fit_zipf,
    fit_zipf_body_tail,
    ks_distance,
)

RNG = np.random.default_rng(99)


class TestLognormalFit:
    def test_recovers_parameters(self):
        s = Lognormal(2.0, 1.5).sample(RNG, 30_000)
        fit = fit_lognormal(s)
        assert fit.mu == pytest.approx(2.0, abs=0.05)
        assert fit.sigma == pytest.approx(1.5, abs=0.05)

    def test_filters_nonpositive(self):
        fit = fit_lognormal([0.0, -1.0, math.e, math.e])
        assert fit.mu == pytest.approx(1.0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_lognormal([1.0])


class TestLognormalTruncated:
    def test_recovers_tail_parameters(self):
        base = Lognormal(6.397, 2.749)
        s = Truncated(base, 120.0, math.inf).sample(RNG, 8_000)
        fit = fit_lognormal_truncated(s, low=120.0)
        assert fit.mu == pytest.approx(6.397, abs=0.25)
        assert fit.sigma == pytest.approx(2.749, abs=0.25)

    def test_no_truncation_matches_plain_mle(self):
        s = Lognormal(1.0, 0.8).sample(RNG, 5_000)
        fit_a = fit_lognormal_truncated(s)
        fit_b = fit_lognormal(s)
        assert fit_a.mu == pytest.approx(fit_b.mu, abs=0.02)
        assert fit_a.sigma == pytest.approx(fit_b.sigma, abs=0.02)

    def test_window_filtering(self):
        with pytest.raises(ValueError):
            fit_lognormal_truncated([1.0, 2.0, 3.0], low=10.0)


class TestLognormalDiscrete:
    def test_recovers_sub_one_median(self):
        # Table A.2's NA model has median < 1; only the discrete fitter
        # can see that through the ceil().
        base = Lognormal(-0.0673, 1.360)
        counts = np.ceil(np.maximum(base.sample(RNG, 20_000), 1e-9)).clip(1)
        fit = fit_lognormal_discrete(counts)
        assert fit.mu == pytest.approx(-0.0673, abs=0.2)
        assert fit.sigma == pytest.approx(1.360, abs=0.2)

    def test_degenerate_counts_fall_back(self):
        fit = fit_lognormal_discrete([1] * 50 + [2] * 2)
        assert fit.sigma > 0

    def test_too_few(self):
        with pytest.raises(ValueError):
            fit_lognormal_discrete([1, 2, 3])


class TestWeibullFit:
    def test_recovers_parameters(self):
        s = Weibull(1.477, 0.005252).sample(RNG, 30_000)
        fit = fit_weibull(s)
        assert fit.alpha == pytest.approx(1.477, rel=0.05)
        assert fit.lam == pytest.approx(0.005252, rel=0.15)

    def test_exponential_special_case(self):
        s = Weibull(1.0, 0.1).sample(RNG, 30_000)
        fit = fit_weibull(s)
        assert fit.alpha == pytest.approx(1.0, abs=0.03)

    def test_truncated_recovery(self):
        base = Weibull(1.477, 0.005252)
        s = Truncated(base, 0.0, 45.0).sample(RNG, 10_000)
        fit = fit_weibull_truncated(s, high=45.0)
        assert fit.alpha == pytest.approx(1.477, rel=0.12)


class TestParetoFit:
    def test_hill_estimator(self):
        s = Pareto(0.9041, 103.0).sample(RNG, 30_000)
        fit = fit_pareto(s, beta=103.0)
        assert fit.alpha == pytest.approx(0.9041, rel=0.03)
        assert fit.beta == 103.0

    def test_default_beta_is_minimum(self):
        fit = fit_pareto([10.0, 20.0, 40.0])
        assert fit.beta == pytest.approx(10.0)

    def test_requires_tail_samples(self):
        with pytest.raises(ValueError):
            fit_pareto([1.0, 2.0], beta=100.0)


class TestZipfFit:
    def test_exact_pmf(self):
        z = Zipf(0.386, 500)
        pmf = [z.pmf(r) for r in range(1, 101)]
        fit = fit_zipf(pmf)
        assert fit.alpha == pytest.approx(0.386, abs=1e-6)
        assert fit.rmse < 1e-9

    def test_max_rank_restriction(self):
        z = Zipf(1.0, 1000)
        pmf = [z.pmf(r) for r in range(1, 1001)]
        fit = fit_zipf(pmf, max_rank=50)
        assert fit.n_ranks == 50

    def test_body_tail_split(self):
        from repro.core.popularity import BodyTailZipf

        bt = BodyTailZipf(alpha_body=0.453, alpha_tail=4.67, split=45, n=100)
        pmf = [bt.pmf(r) for r in range(1, 101)]
        body, tail = fit_zipf_body_tail(pmf, split_rank=45)
        assert body.alpha == pytest.approx(0.453, abs=0.01)
        assert tail.alpha == pytest.approx(4.67, abs=0.05)

    def test_distribution_roundtrip(self):
        fit = fit_zipf([0.5, 0.25, 0.125, 0.0625])
        assert fit.distribution().n == 4

    def test_rejects_too_few(self):
        with pytest.raises(ValueError):
            fit_zipf([1.0])


class TestSplicedFit:
    def test_table_a1_shape_recovery(self):
        from repro.core.distributions import Spliced

        true = Spliced(Lognormal(2.108, 2.502), Lognormal(6.397, 2.749),
                       boundary=120.0, body_weight=0.75, body_low=64.0)
        s = true.sample(RNG, 20_000)
        fit = fit_spliced(s, boundary=120.0, body_low=64.0,
                          truncation_aware=True)
        assert fit.body_weight == pytest.approx(0.75, abs=0.02)
        tail = fit.distribution.tail.base
        assert tail.mu == pytest.approx(6.397, abs=0.3)
        assert fit.ks < 0.02

    def test_pareto_tail(self):
        from repro.core.distributions import Spliced

        true = Spliced(Lognormal(3.353, 1.625), Pareto(0.9041, 103.0),
                       boundary=103.0, body_weight=0.70)
        s = true.sample(RNG, 20_000)
        fit = fit_spliced(s, boundary=103.0, tail_family="pareto")
        assert fit.distribution.tail.base.alpha == pytest.approx(0.9041, rel=0.1)

    def test_rejects_one_sided_data(self):
        with pytest.raises(ValueError):
            fit_spliced([1.0, 2.0, 3.0], boundary=100.0)

    def test_unknown_family(self):
        s = list(np.linspace(1, 200, 100))
        with pytest.raises(ValueError):
            fit_spliced(s, boundary=100.0, body_family="cauchy")


class TestKsDistance:
    def test_perfect_fit_small(self):
        dist = Lognormal(0.0, 1.0)
        s = dist.sample(RNG, 20_000)
        assert ks_distance(dist, s) < 0.02

    def test_bad_fit_large(self):
        dist = Lognormal(0.0, 1.0)
        s = Lognormal(5.0, 1.0).sample(RNG, 2_000)
        assert ks_distance(dist, s) > 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance(Lognormal(0, 1), [])
