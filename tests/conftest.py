"""Shared fixtures: one small synthesized trace reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentContext
from repro.filtering import apply_filters
from repro.synthesis import SynthesisConfig, TraceSynthesizer


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_config():
    """A one-day trace: large enough for distribution checks, fast enough
    to synthesize once per test session."""
    return SynthesisConfig(days=1.0, mean_arrival_rate=0.3, seed=424242)


@pytest.fixture(scope="session")
def small_trace(small_config):
    return TraceSynthesizer(small_config).run()


@pytest.fixture(scope="session")
def filtered(small_trace):
    return apply_filters(small_trace.sessions)


@pytest.fixture(scope="session")
def context(small_config):
    ctx = ExperimentContext(small_config)
    return ctx
