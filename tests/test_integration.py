"""End-to-end integration tests: the full reproduction pipeline."""

import numpy as np
import pytest

from repro.analysis import active_sessions, queries_per_session_ccdf
from repro.core import Region, SyntheticWorkloadGenerator, WorkloadModel
from repro.core.distributions import Lognormal
from repro.core.fitting import fit_lognormal_discrete
from repro.filtering import apply_filters
from repro.measurement import Trace
from repro.synthesis import SynthesisConfig, TraceSynthesizer


class TestClosedLoop:
    """Synthesize -> measure -> filter -> fit -> regenerate.

    The central validity argument of the reproduction: user behaviour
    generated from the paper's model must be recoverable through the
    measurement and filtering pipeline, and a workload model refit from
    the filtered trace must generate statistically similar workloads.
    """

    @pytest.fixture(scope="class")
    def refit_model(self, filtered):
        views = active_sessions(filtered)
        qps = {}
        for region in (Region.NORTH_AMERICA, Region.EUROPE):
            counts = [float(v.n_queries) for v in views if v.region is region]
            if len(counts) >= 30:
                qps[region] = fit_lognormal_discrete(counts)
        assert qps, "refit needs at least one region"
        return WorkloadModel.from_fits(
            passive_duration={}, queries_per_session=qps,
            first_query={}, interarrival={}, last_query={},
            name="refit",
        )

    def test_refit_parameters_near_paper(self, refit_model):
        refit = refit_model.queries_per_session(Region.EUROPE)
        paper = WorkloadModel.paper().queries_per_session(Region.EUROPE)
        assert isinstance(refit, Lognormal)
        assert refit.mu == pytest.approx(paper.mu, abs=0.35)
        assert refit.sigma == pytest.approx(paper.sigma, abs=0.35)

    def test_regenerated_workload_matches(self, refit_model):
        gen = SyntheticWorkloadGenerator(model=refit_model, n_peers=150, seed=5)
        sessions = gen.generate(6 * 3600.0)
        eu_counts = [
            s.query_count for s in sessions
            if not s.passive and s.region is Region.EUROPE
        ]
        paper_gen = SyntheticWorkloadGenerator(n_peers=150, seed=5)
        paper_sessions = paper_gen.generate(6 * 3600.0)
        eu_paper = [
            s.query_count for s in paper_sessions
            if not s.passive and s.region is Region.EUROPE
        ]
        assert np.median(eu_counts) == pytest.approx(np.median(eu_paper), abs=1.0)


class TestTracePersistenceRoundtrip:
    def test_analysis_identical_after_reload(self, small_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        small_trace.to_jsonl(path)
        reloaded = Trace.from_jsonl(path)
        a = apply_filters(small_trace.sessions).report.as_dict()
        b = apply_filters(reloaded.sessions).report.as_dict()
        assert a == b


class TestScaleInvariance:
    """Distribution shapes should not depend on the synthesis scale."""

    def test_queries_ccdf_stable_across_rates(self):
        def eu_at5(rate, seed):
            cfg = SynthesisConfig(days=1.0, mean_arrival_rate=rate, seed=seed)
            trace = TraceSynthesizer(cfg).run()
            views = active_sessions(apply_filters(trace.sessions))
            return queries_per_session_ccdf(views)[Region.EUROPE].at(4.5)

        lo = eu_at5(0.15, 11)
        hi = eu_at5(0.45, 11)
        assert lo == pytest.approx(hi, abs=0.10)
