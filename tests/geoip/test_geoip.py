"""Tests for the synthetic GeoIP database and IP allocator."""

import pytest

from repro.core.regions import Region
from repro.geoip import GeoIpDatabase, IpAllocator


class TestLookup:
    def test_region_blocks_resolve(self):
        db = GeoIpDatabase()
        assert db.lookup("64.1.2.3") is Region.NORTH_AMERICA
        assert db.lookup("80.10.20.30") is Region.EUROPE
        assert db.lookup("58.1.1.1") is Region.ASIA

    def test_unallocated_space_is_other(self):
        db = GeoIpDatabase()
        assert db.lookup("8.8.8.8") is Region.OTHER

    def test_rejects_bad_ip(self):
        db = GeoIpDatabase()
        with pytest.raises(ValueError):
            db.lookup("not an ip")
        with pytest.raises(ValueError):
            db.lookup("::1")

    def test_rejects_overlapping_allocation(self):
        with pytest.raises(ValueError):
            GeoIpDatabase({Region.EUROPE: (80,), Region.ASIA: (80,)})

    def test_rejects_invalid_octet(self):
        with pytest.raises(ValueError):
            GeoIpDatabase({Region.EUROPE: (0,)})


class TestAllocator:
    def test_allocated_ips_resolve_back(self):
        alloc = IpAllocator()
        for region in (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA, Region.OTHER):
            ip = alloc.allocate(region)
            assert alloc.database.lookup(ip) is region

    def test_uniqueness_at_scale(self):
        alloc = IpAllocator()
        ips = alloc.allocate_many(Region.EUROPE, 20_000)
        assert len(set(ips)) == 20_000

    def test_spreads_across_blocks(self):
        alloc = IpAllocator()
        firsts = {ip.split(".")[0] for ip in alloc.allocate_many(Region.ASIA, 64)}
        assert len(firsts) > 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            IpAllocator().allocate_many(Region.ASIA, -1)

    def test_valid_octet_ranges(self):
        alloc = IpAllocator()
        for ip in alloc.allocate_many(Region.NORTH_AMERICA, 1000):
            octets = [int(o) for o in ip.split(".")]
            assert len(octets) == 4
            assert all(0 <= o <= 255 for o in octets)
            assert all(1 <= o <= 254 for o in octets[1:])
