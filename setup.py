"""Shim for environments without the ``wheel`` package (offline installs)."""
from setuptools import setup

setup()
